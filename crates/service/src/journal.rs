//! Durable append-only journal of applied mutations, with group
//! commit and segment-based compaction — the O(delta) half of the
//! persistence story (`POST /snapshot` is the O(n) half).
//!
//! # What is journaled
//!
//! Exactly the three mutations that change shard state, recorded
//! *after* they commit (observation-not-control, the `alid-obs`
//! discipline — a journal failure can stall durability, never change
//! a detection result):
//!
//! * **admit** (`"t":"a"`) — one item's global id, routed shard, and
//!   vector, enqueued by [`Service::ingest`](crate::Service::ingest)
//!   while the shard and placement locks are still held;
//! * **apply** (`"t":"d"`) — one shard's drain, recorded as the
//!   shard-local item count after the queue was applied;
//! * **sweep** (`"t":"s"`) — one shard's forced detection sweep, with
//!   the item count it ran at (a validation anchor for replay) and
//!   the auxiliary index bytes the sweep's tombstone compaction freed.
//!
//! Queries, merge-knob changes and telemetry are all derived or
//! ephemeral and stay out. Because every frame is enqueued while its
//! mutation's commit lock is held, the channel's FIFO order *is* a
//! legal commit order: frames touching one shard appear in that
//! shard's commit order, and frames of different shards commute.
//!
//! # Frame and segment format
//!
//! A segment file `journal-<seq>` starts with a 20-byte header —
//! magic `ALIDJRNL`, a little-endian `u32` format version, and the
//! little-endian `u64` *logical position* (frames appended since the
//! service's birth) of its first frame — followed by frames laid out
//! as `[u32 payload len][u32 FNV-1a checksum][serde::bin payload]`,
//! both words little-endian. Positions are logical on purpose: they
//! are a pure function of the mutation history, so an uninterrupted
//! run and a snapshot+replay run stamp byte-identical positions into
//! their snapshots, which is what makes the recovery proof a one-line
//! `snapshot_bytes` comparison. Physical segment numbers, which
//! depend on restart and compaction timing, never enter a snapshot.
//!
//! # Group commit
//!
//! Appenders never touch the file: they bump the logical position and
//! send a typed message to a dedicated writer thread, which drains
//! everything queued, encodes it, and pays **one** `write` + one
//! `fsync` for the whole batch. [`Journal::barrier`] waits for the
//! fsync covering every previously appended frame; N concurrent HTTP
//! ingests that barrier together therefore share one disk flush. A
//! writer I/O failure is fail-fast: the thread panics (visibly, on
//! stderr), subsequent appends are dropped, and `/healthz` shows the
//! growing `appended - durable` lag — detection itself never stops.
//!
//! # Compaction
//!
//! The snapshot codec captures the cut position and asks the writer
//! to rotate segments while it still holds every service lock (see
//! [`Journal::rotate_for_cut`]); once the snapshot is durably on
//! disk, [`Journal::truncate_below`] deletes every closed segment
//! whose frames all lie below the cut. A crash between the snapshot
//! rename and the truncation is safe: replay skips frames below the
//! snapshot's embedded position.
//!
//! # Recovery
//!
//! [`recover_and_open`] replays every frame at or past the restored
//! snapshot's position through the service's ordinary deterministic
//! mutation paths. A *torn tail* — the final segment ending inside a
//! frame, the signature of a crash mid-`write` — recovers cleanly to
//! the last complete frame and truncates the file to that boundary;
//! any other malformation (checksum mismatch, undecodable payload, a
//! position gap) is a positioned [`JournalError`], because silently
//! skipping a mid-history frame would replay a *different* history.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};

use serde::bin;
use serde::{Json, Serialize};

use crate::service::{Admission, Service};

/// Leading bytes of every journal segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"ALIDJRNL";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Segment header: magic + version word + first logical position.
const SEGMENT_HEADER_LEN: usize = SEGMENT_MAGIC.len() + 4 + 8;
/// Frame header: payload length word + checksum word.
const FRAME_HEADER_LEN: usize = 8;

/// Static configuration of a [`Journal`].
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding the `journal-<seq>` segment files.
    pub dir: PathBuf,
    /// Segment size threshold in bytes: the writer rotates to a fresh
    /// segment once the current one exceeds it, and the HTTP front
    /// end triggers a compacting snapshot once this many journal
    /// bytes accumulated since the last one. `0` disables both (the
    /// journal still appends and recovers; explicit `POST /snapshot`
    /// still compacts).
    pub compact_every: u64,
}

/// Why a journal failed to open, replay, or recover.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A segment's bytes are malformed mid-history (checksum
    /// mismatch, undecodable payload, position gap) — not a torn
    /// tail, which recovers cleanly.
    Corrupt {
        /// Segment file holding the damage.
        segment: PathBuf,
        /// Byte offset of the offending frame within the segment.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// A frame decoded but could not be re-applied to the service
    /// (wrong dimensionality, id mismatch, a dry queue) — the journal
    /// and the restored snapshot disagree about history.
    Replay {
        /// Segment file holding the frame.
        segment: PathBuf,
        /// Byte offset of the frame within the segment.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { segment, offset, reason } => {
                write!(f, "journal corrupt at {}:{offset}: {reason}", segment.display())
            }
            JournalError::Replay { segment, offset, reason } => {
                write!(f, "journal replay failed at {}:{offset}: {reason}", segment.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What appenders enqueue to the writer thread. Mutation variants are
/// captured by value under the mutation's commit lock; encoding
/// happens on the writer thread, off every hot path.
enum Msg {
    Admit {
        id: u64,
        shard: u32,
        v: Vec<f64>,
    },
    Apply {
        shard: u32,
        upto: u64,
    },
    Sweep {
        shard: u32,
        upto: u64,
        freed: u64,
    },
    /// Close the current segment (flush + fsync) and open the next —
    /// enqueued by the snapshot codec at its cut position.
    Rotate,
    /// Reply on the channel once every earlier frame is fsynced.
    Barrier(SyncSender<()>),
    /// Flush and exit the writer thread.
    Shutdown,
}

/// State the writer thread shares with appenders — split from
/// [`JournalInner`] so the thread holds no reference cycle keeping
/// the journal alive.
struct Shared {
    dir: PathBuf,
    compact_every: u64,
    /// Frames durably on disk (logical position after the last fsync).
    durable: AtomicU64,
    /// Journal bytes written since the last compaction — the
    /// auto-compaction trigger.
    since_compaction: AtomicU64,
    appends: Arc<alid_obs::Counter>,
    bytes: Arc<alid_obs::Counter>,
    fsync_seconds: Arc<alid_obs::Histogram>,
}

struct JournalInner {
    shared: Arc<Shared>,
    compactions: Arc<alid_obs::Counter>,
    tx: Mutex<Sender<Msg>>,
    /// Frames appended (enqueued) since the service's birth — the
    /// logical position. Bumped under the mutation's commit lock, so
    /// under `lock_all` it is exact (no appender can be in flight).
    appended: AtomicU64,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for JournalInner {
    fn drop(&mut self) {
        if let Ok(tx) = self.tx.lock() {
            let _ = tx.send(Msg::Shutdown);
        }
        let handle = self.writer.lock().ok().and_then(|mut w| w.take());
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// Handle to a live journal: cheap to clone, shared between the
/// [`Service`] (which appends) and the HTTP front end (which
/// barriers, compacts, and reports lag).
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.inner.shared.dir)
            .field("appended", &self.appended())
            .field("durable", &self.durable())
            .finish()
    }
}

impl Journal {
    /// Frames appended since the service's birth (the logical
    /// position; includes frames not yet fsynced).
    pub fn appended(&self) -> u64 {
        self.inner.appended.load(Ordering::SeqCst)
    }

    /// Frames durably fsynced to disk.
    pub fn durable(&self) -> u64 {
        self.inner.shared.durable.load(Ordering::SeqCst)
    }

    /// Appended-but-not-yet-fsynced frames — the durability lag
    /// `/healthz` reports. Zero after any [`Self::barrier`].
    pub fn lag(&self) -> u64 {
        self.appended().saturating_sub(self.durable())
    }

    /// Blocks until every frame appended before this call is fsynced.
    /// Concurrent barriers batch into one group commit (one fsync
    /// covers them all). Returns immediately if the writer has died.
    pub fn barrier(&self) {
        let (done_tx, done_rx) = mpsc::sync_channel(1);
        let sent = {
            let tx = self.inner.tx.lock().expect("journal tx");
            tx.send(Msg::Barrier(done_tx)).is_ok()
        };
        if sent {
            let _ = done_rx.recv();
        }
    }

    /// Whether enough journal bytes accumulated since the last
    /// compaction to warrant folding them into a snapshot (the HTTP
    /// ingest path's auto-compaction trigger; always `false` when
    /// `compact_every` is 0).
    pub fn needs_compaction(&self) -> bool {
        self.inner.shared.compact_every > 0
            && self.inner.shared.since_compaction.load(Ordering::SeqCst)
                >= self.inner.shared.compact_every
    }

    /// Captures the snapshot cut: the exact logical position the
    /// snapshot covers, plus a non-blocking rotation request so the
    /// cut lands on a segment boundary (making the covered segments
    /// deletable by [`Self::truncate_below`]).
    ///
    /// Must be called while the caller holds the service's `lock_all`
    /// cut: every append happens under a shard lock, so no append can
    /// be in flight and the position read is exact. Deliberately
    /// fire-and-forget — waiting for the writer here would block I/O
    /// under every service lock.
    pub(crate) fn rotate_for_cut(&self) -> u64 {
        let cut = self.inner.appended.load(Ordering::SeqCst);
        let tx = self.inner.tx.lock().expect("journal tx");
        let _ = tx.send(Msg::Rotate);
        cut
    }

    /// Deletes every closed segment whose frames all lie below
    /// `cut_pos` (covered by the snapshot just written) and returns
    /// the bytes freed. The newest segment is never touched — the
    /// writer owns it. Call after the snapshot is durably renamed
    /// into place; a crash in between is safe either way, because
    /// replay skips frames below the snapshot's position.
    pub fn truncate_below(&self, cut_pos: u64) -> u64 {
        let Ok(segments) = list_segments(&self.inner.shared.dir) else { return 0 };
        let mut freed = 0u64;
        for pair in segments.windows(2) {
            // A segment's frames end where the next one begins: it is
            // fully covered iff its successor starts at or below the
            // cut. An unreadable successor header (the writer may be
            // mid-create) just means "don't delete yet" — the next
            // compaction will.
            let Some(next_first) = read_first_pos(&pair[1].1) else { continue };
            if next_first <= cut_pos {
                if let Ok(meta) = fs::metadata(&pair[0].1) {
                    if fs::remove_file(&pair[0].1).is_ok() {
                        freed += meta.len();
                    }
                }
            }
        }
        self.inner.compactions.inc();
        self.inner.shared.since_compaction.store(0, Ordering::SeqCst);
        freed
    }

    /// Journals one admission. Called by `Service::ingest` while the
    /// shard and placement locks are held, so the channel order
    /// agrees with the commit order.
    pub(crate) fn append_admit(&self, id: u64, shard: u32, v: &[f64]) {
        self.push(Msg::Admit { id, shard, v: v.to_vec() });
    }

    /// Journals one shard's drain (called under that shard's lock).
    pub(crate) fn append_apply(&self, shard: u32, upto: u64) {
        self.push(Msg::Apply { shard, upto });
    }

    /// Journals one shard's forced sweep (called under that shard's
    /// lock). `freed` records the auxiliary index bytes the sweep's
    /// tombstone compaction released — informational for operators;
    /// replay re-derives the compaction from the deterministic sweep
    /// itself.
    pub(crate) fn append_sweep(&self, shard: u32, upto: u64, freed: u64) {
        self.push(Msg::Sweep { shard, upto, freed });
    }

    fn push(&self, msg: Msg) {
        self.inner.appended.fetch_add(1, Ordering::SeqCst);
        let tx = self.inner.tx.lock().expect("journal tx");
        // A send can only fail once the writer died (I/O panic); the
        // frame is dropped and the lag surfaces on /healthz.
        let _ = tx.send(msg);
    }
}

/// 32-bit FNV-1a over `bytes` — the frame checksum. Hand-rolled (no
/// external crates) and byte-order independent.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:08}"))
}

/// Every `journal-<seq>` file under `dir`, sorted by segment number.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name.strip_prefix("journal-").and_then(|s| s.parse::<u64>().ok()) else {
            continue;
        };
        out.push((seq, entry.path()));
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// The logical position of a segment's first frame, read from its
/// header; `None` when the header is short or malformed.
fn read_first_pos(path: &Path) -> Option<u64> {
    let mut file = File::open(path).ok()?;
    let mut hdr = [0u8; SEGMENT_HEADER_LEN];
    file.read_exact(&mut hdr).ok()?;
    if &hdr[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return None;
    }
    if u32::from_le_bytes(hdr[8..12].try_into().ok()?) != SEGMENT_VERSION {
        return None;
    }
    Some(u64::from_le_bytes(hdr[12..20].try_into().ok()?))
}

/// The writer thread's open segment.
struct Seg {
    file: File,
    seq: u64,
    written: u64,
}

/// Creates `journal-<seq>` with its header durably on disk (file and
/// directory both fsynced, so a crash right after still lists it).
fn open_segment(dir: &Path, seq: u64, first_pos: u64) -> std::io::Result<Seg> {
    let mut file = File::create(segment_path(dir, seq))?;
    let mut hdr = Vec::with_capacity(SEGMENT_HEADER_LEN);
    hdr.extend_from_slice(SEGMENT_MAGIC);
    hdr.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    hdr.extend_from_slice(&first_pos.to_le_bytes());
    file.write_all(&hdr)?;
    file.sync_all()?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(Seg { file, seq, written: hdr.len() as u64 })
}

/// Appends one `[len][checksum][payload]` frame to the batch buffer.
fn encode_frame(buf: &mut Vec<u8>, payload: &Json) {
    let mut body = Vec::new();
    bin::encode_into(payload, &mut body);
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a32(&body).to_le_bytes());
    buf.extend_from_slice(&body);
}

/// Writes and fsyncs the accumulated batch, then publishes the new
/// durable position. One call per group commit: N queued mutations
/// cost one `write` + one `fsync`.
fn commit_batch(
    shared: &Shared,
    seg: &mut Seg,
    buf: &mut Vec<u8>,
    frames: &mut u64,
    pos: &mut u64,
) {
    if buf.is_empty() {
        return;
    }
    {
        let _fsync = shared.fsync_seconds.start_timer();
        seg.file.write_all(buf).expect("journal segment write");
        seg.file.sync_all().expect("journal segment fsync");
    }
    seg.written += buf.len() as u64;
    *pos += *frames;
    shared.appends.add(*frames);
    shared.bytes.add(buf.len() as u64);
    shared.since_compaction.fetch_add(buf.len() as u64, Ordering::SeqCst);
    shared.durable.store(*pos, Ordering::SeqCst);
    buf.clear();
    *frames = 0;
}

/// Closes the current segment and opens its successor, whose first
/// frame will be logical position `pos`.
fn next_segment(shared: &Shared, seg: Seg, pos: u64) -> Seg {
    let seq = seg.seq + 1;
    drop(seg);
    open_segment(&shared.dir, seq, pos).expect("journal segment rotate")
}

/// The group-commit writer loop: block on one message, drain
/// everything else queued, encode, write + fsync once, answer
/// barriers, rotate when the segment outgrows its bound.
fn writer_loop(shared: &Shared, rx: &Receiver<Msg>, mut seg: Seg, mut pos: u64) {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let Ok(first) = rx.recv() else { return };
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        let mut frames = 0u64;
        let mut barriers: Vec<SyncSender<()>> = Vec::new();
        let mut shutdown = false;
        for msg in batch {
            let payload = match msg {
                Msg::Barrier(done) => {
                    barriers.push(done);
                    continue;
                }
                Msg::Shutdown => {
                    shutdown = true;
                    continue;
                }
                Msg::Rotate => {
                    // Frames queued before the rotation belong to the
                    // closing segment; land them first.
                    commit_batch(shared, &mut seg, &mut buf, &mut frames, &mut pos);
                    seg = next_segment(shared, seg, pos);
                    continue;
                }
                Msg::Admit { id, shard, v } => Json::object([
                    ("t", "a".to_json()),
                    ("id", Json::UInt(id)),
                    ("shard", Json::UInt(u64::from(shard))),
                    ("v", Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())),
                ]),
                Msg::Apply { shard, upto } => Json::object([
                    ("t", "d".to_json()),
                    ("shard", Json::UInt(u64::from(shard))),
                    ("upto", Json::UInt(upto)),
                ]),
                Msg::Sweep { shard, upto, freed } => Json::object([
                    ("t", "s".to_json()),
                    ("shard", Json::UInt(u64::from(shard))),
                    ("upto", Json::UInt(upto)),
                    ("freed", Json::UInt(freed)),
                ]),
            };
            encode_frame(&mut buf, &payload);
            frames += 1;
        }
        commit_batch(shared, &mut seg, &mut buf, &mut frames, &mut pos);
        if shared.compact_every > 0 && seg.written >= shared.compact_every {
            seg = next_segment(shared, seg, pos);
        }
        // Barriers answer only after the batch fsync above: an acked
        // barrier means every earlier frame is durable.
        for done in barriers {
            let _ = done.send(());
        }
        if shutdown {
            return;
        }
    }
}

fn corrupt(path: &Path, offset: u64, reason: impl Into<String>) -> JournalError {
    JournalError::Corrupt { segment: path.to_path_buf(), offset, reason: reason.into() }
}

/// Truncates `path` to `len` bytes and fsyncs — how recovery disposes
/// of a torn tail, so a second recovery sees a clean segment.
fn truncate_file(path: &Path, len: u64) -> Result<(), JournalError> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()?;
    Ok(())
}

fn frame_u64(frame: &Json, key: &str) -> Result<u64, String> {
    frame
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("frame field {key:?} missing or not an unsigned integer"))
}

/// Re-applies one decoded frame through the service's deterministic
/// mutation paths, validating that the replay lands exactly where the
/// live run did (same id, same shard, same item counts).
fn apply_frame(
    service: &Service,
    frame: &Json,
    segment: &Path,
    offset: u64,
) -> Result<(), JournalError> {
    let fail =
        |reason: String| JournalError::Replay { segment: segment.to_path_buf(), offset, reason };
    let t = frame
        .get("t")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("frame has no type tag".into()))?;
    let shard = frame_u64(frame, "shard").map_err(&fail)?;
    if shard as usize >= service.shard_count() {
        return Err(fail(format!(
            "frame names shard {shard}, service has {}",
            service.shard_count()
        )));
    }
    match t {
        "a" => {
            let id = frame_u64(frame, "id").map_err(&fail)?;
            let nums = frame
                .get("v")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail("admit frame has no vector".into()))?;
            let mut v = Vec::with_capacity(nums.len());
            for x in nums {
                v.push(
                    x.as_f64()
                        .ok_or_else(|| fail("admit vector has a non-numeric element".into()))?,
                );
            }
            if v.len() != service.config().dim {
                return Err(fail(format!(
                    "admit vector has {} dims, service expects {}",
                    v.len(),
                    service.config().dim
                )));
            }
            match service.ingest(&v) {
                Admission::Enqueued { id: got_id, shard: got_shard, .. }
                    if got_id == id && u64::from(got_shard) == shard =>
                {
                    Ok(())
                }
                Admission::Enqueued { id: got_id, shard: got_shard, .. } => Err(fail(format!(
                    "admit replayed as id {got_id} on shard {got_shard}, journal recorded id {id} on shard {shard}"
                ))),
                Admission::Busy { .. } => {
                    Err(fail("shard queue refused a replayed admission".into()))
                }
            }
        }
        "d" => {
            let upto = frame_u64(frame, "upto").map_err(&fail)?;
            service.replay_apply(shard as usize, upto).map(|_| ()).map_err(&fail)
        }
        "s" => {
            let upto = frame_u64(frame, "upto").map_err(&fail)?;
            service.replay_sweep(shard as usize, upto).map(|_| ()).map_err(&fail)
        }
        other => Err(fail(format!("unknown frame type {other:?}"))),
    }
}

/// Replays the journal in `cfg.dir` into `service` from logical
/// position `since_pos` (the restored snapshot's embedded position;
/// 0 for a fresh service), then opens a writer on a fresh segment and
/// returns the live [`Journal`].
///
/// Call *before* [`Service::set_journal`](crate::Service::set_journal)
/// — the service must not re-journal its own replay. Frames below
/// `since_pos` are skipped (already folded into the snapshot); a gap
/// above it is corruption. The returned journal's position continues
/// the logical count, so a later snapshot of the recovered service is
/// byte-identical to one of an uninterrupted run.
pub fn recover_and_open(
    cfg: JournalConfig,
    service: &Service,
    since_pos: u64,
) -> Result<Journal, JournalError> {
    fs::create_dir_all(&cfg.dir)?;
    let segments = list_segments(&cfg.dir)?;
    let mut last_seq = segments.last().map(|&(seq, _)| seq);
    let mut expected = since_pos;
    let n = segments.len();
    for (i, (_, path)) in segments.iter().enumerate() {
        let is_last = i + 1 == n;
        let bytes = fs::read(path)?;
        let header_ok = bytes.len() >= SEGMENT_HEADER_LEN
            && &bytes[..SEGMENT_MAGIC.len()] == SEGMENT_MAGIC
            && u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"))
                == SEGMENT_VERSION;
        if !header_ok {
            if is_last {
                // A crash between segment creation and the header
                // fsync: the file provably holds no acked frame
                // (barriers ack only after fsync), so drop it.
                fs::remove_file(path)?;
                last_seq = if i == 0 { None } else { Some(segments[i - 1].0) };
                break;
            }
            return Err(corrupt(path, 0, "bad or truncated segment header"));
        }
        let first_pos = u64::from_le_bytes(bytes[12..20].try_into().expect("8 header bytes"));
        if first_pos > expected {
            return Err(corrupt(
                path,
                12,
                format!("segment begins at frame {first_pos} but recovery is at frame {expected}"),
            ));
        }
        let mut posn = first_pos;
        let mut offset = SEGMENT_HEADER_LEN;
        while offset < bytes.len() {
            let remaining = bytes.len() - offset;
            if remaining < FRAME_HEADER_LEN {
                if is_last {
                    truncate_file(path, offset as u64)?;
                    break;
                }
                return Err(corrupt(path, offset as u64, "torn frame header"));
            }
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 len bytes"))
                as usize;
            let sum = u32::from_le_bytes(
                bytes[offset + 4..offset + 8].try_into().expect("4 checksum bytes"),
            );
            if remaining < FRAME_HEADER_LEN + len {
                if is_last {
                    truncate_file(path, offset as u64)?;
                    break;
                }
                return Err(corrupt(
                    path,
                    offset as u64,
                    format!("frame of {len} payload bytes torn at end of segment"),
                ));
            }
            let payload = &bytes[offset + FRAME_HEADER_LEN..offset + FRAME_HEADER_LEN + len];
            if fnv1a32(payload) != sum {
                // A full-length frame with a bad checksum is bit rot
                // or tampering, not a torn append (group commits are
                // contiguous prefix writes) — refuse loudly.
                return Err(corrupt(path, offset as u64, "frame checksum mismatch"));
            }
            let frame = bin::decode(payload).map_err(|e| {
                corrupt(path, offset as u64, format!("frame payload undecodable: {e}"))
            })?;
            if posn == expected {
                apply_frame(service, &frame, path, offset as u64)?;
                expected += 1;
            } else if posn > expected {
                return Err(corrupt(
                    path,
                    offset as u64,
                    format!("frame {posn} but recovery is at frame {expected}"),
                ));
            }
            posn += 1;
            offset += FRAME_HEADER_LEN + len;
        }
    }
    let registry = service.metrics_registry();
    let shared = Arc::new(Shared {
        dir: cfg.dir.clone(),
        compact_every: cfg.compact_every,
        durable: AtomicU64::new(expected),
        since_compaction: AtomicU64::new(0),
        appends: registry.counter(
            "alid_service_journal_appends_total",
            "Mutation frames durably appended to the journal",
            &[],
        ),
        bytes: registry.counter(
            "alid_service_journal_bytes_total",
            "Bytes durably appended to journal segments",
            &[],
        ),
        fsync_seconds: registry.histogram(
            "alid_service_journal_fsync_seconds",
            "Wall time of one group-commit write+fsync batch",
            &[],
        ),
    });
    let compactions = registry.counter(
        "alid_service_journal_compactions_total",
        "Compactions folding closed journal segments into a snapshot",
        &[],
    );
    let seg = open_segment(&cfg.dir, last_seq.map_or(0, |s| s + 1), expected)?;
    let (tx, rx) = mpsc::channel();
    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("alid-journal-writer".into())
            .spawn(move || writer_loop(&shared, &rx, seg, expected))
            .map_err(JournalError::Io)?
    };
    Ok(Journal {
        inner: Arc::new(JournalInner {
            shared,
            compactions,
            tx: Mutex::new(tx),
            appended: AtomicU64::new(expected),
            writer: Mutex::new(Some(writer)),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Service, ServiceConfig};
    use crate::snapshot;

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "alid-journal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("test dir");
        d
    }

    fn items(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| match i % 5 {
                0 | 1 => vec![(i % 7) as f64 * 0.03, 0.0],
                2 | 3 => vec![40.0 + (i % 7) as f64 * 0.03, 40.0],
                _ => vec![i as f64 * 17.0, -(i as f64) * 23.0],
            })
            .collect()
    }

    fn journaled_service(dir: &Path, shards: usize) -> Service {
        let cfg = ServiceConfig::new(2, shards, crate::service::tests::test_params()).with_batch(8);
        let mut svc = Service::new(cfg);
        let journal =
            recover_and_open(JournalConfig { dir: dir.to_path_buf(), compact_every: 0 }, &svc, 0)
                .expect("open journal");
        svc.set_journal(journal);
        svc
    }

    /// Drives a deterministic mutation history: ingest + drain +
    /// sweep over `n` items, then a few extra admissions left queued.
    fn run_history(svc: &Service, n: usize) {
        let data = items(n);
        for chunk in data.chunks(16) {
            svc.ingest_batch(chunk.iter().map(Vec::as_slice));
            svc.drain();
        }
        svc.sweep();
        for v in items(5) {
            svc.ingest(&v);
        }
    }

    #[test]
    fn fnv1a32_matches_reference_vectors() {
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn replay_reproduces_the_run_bit_for_bit() {
        let dir = temp_dir("replay");
        let live = journaled_service(&dir, 3);
        run_history(&live, 50);
        live.journal().expect("journal attached").barrier();
        let live_bytes = snapshot::snapshot_bytes(&live);
        drop(live); // shuts the writer down cleanly

        let cfg = ServiceConfig::new(2, 3, crate::service::tests::test_params()).with_batch(8);
        let mut fresh = Service::new(cfg);
        let journal =
            recover_and_open(JournalConfig { dir: dir.clone(), compact_every: 0 }, &fresh, 0)
                .expect("recover");
        fresh.set_journal(journal);
        assert_eq!(
            live_bytes,
            snapshot::snapshot_bytes(&fresh),
            "journal replay must reproduce the uninterrupted run byte for byte"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_to_the_last_complete_frame_and_truncates() {
        let dir = temp_dir("torn");
        let live = journaled_service(&dir, 1);
        let data = items(8);
        for v in &data {
            live.ingest(v);
        }
        live.journal().expect("journal").barrier();
        drop(live);
        // Tear the final frame: chop a few bytes off the only segment.
        let seg = segment_path(&dir, 0);
        let full = fs::metadata(&seg).expect("segment").len();
        truncate_file(&seg, full - 3).expect("tear");

        let fresh = journaled_service(&dir, 1);
        assert_eq!(fresh.len(), data.len() - 1, "recovery stops at the last complete frame");
        assert!(
            fs::metadata(&seg).expect("segment").len() < full - 3,
            "the torn bytes must be truncated away"
        );
        drop(fresh);
        // A second recovery sees a clean (now non-last) segment.
        let again = journaled_service(&dir, 1);
        assert_eq!(again.len(), data.len() - 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_corruption_is_a_positioned_error() {
        let dir = temp_dir("corrupt");
        let live = journaled_service(&dir, 1);
        for v in items(4) {
            live.ingest(&v);
        }
        live.journal().expect("journal").barrier();
        drop(live);
        // Flip one payload byte of the first frame.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).expect("segment");
        bytes[SEGMENT_HEADER_LEN + FRAME_HEADER_LEN + 2] ^= 0xff;
        fs::write(&seg, &bytes).expect("rewrite");

        let cfg = ServiceConfig::new(2, 1, crate::service::tests::test_params()).with_batch(8);
        let fresh = Service::new(cfg);
        let err = recover_and_open(JournalConfig { dir: dir.clone(), compact_every: 0 }, &fresh, 0)
            .expect_err("corruption must refuse recovery");
        match err {
            JournalError::Corrupt { segment, offset, reason } => {
                assert_eq!(segment, seg);
                assert_eq!(offset, SEGMENT_HEADER_LEN as u64);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_truncation_free_covered_segments() {
        let dir = temp_dir("truncate");
        let live = journaled_service(&dir, 2);
        for v in items(20) {
            live.ingest(&v);
        }
        live.drain();
        let journal = live.journal().expect("journal").clone();
        journal.barrier();
        let cut = journal.rotate_for_cut();
        assert!(cut > 0);
        journal.barrier(); // writer has processed the rotation
        let freed = journal.truncate_below(cut);
        assert!(freed > 0, "the closed segment must be deleted");
        let segs = list_segments(&dir).expect("list");
        assert!(
            segs.iter().all(|&(seq, _)| seq >= 1),
            "segment 0 was covered by the cut: {segs:?}"
        );
        drop(live);
        // Recovery from the cut position finds nothing left to replay.
        let cfg = ServiceConfig::new(2, 2, crate::service::tests::test_params()).with_batch(8);
        let fresh = Service::new(cfg);
        let journal =
            recover_and_open(JournalConfig { dir: dir.clone(), compact_every: 0 }, &fresh, cut)
                .expect("recover past the cut");
        assert_eq!(fresh.len(), 0, "all frames below the cut are skipped");
        assert_eq!(journal.appended(), cut, "the logical position continues");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn barrier_makes_appends_durable_and_lag_zero() {
        let dir = temp_dir("barrier");
        let live = journaled_service(&dir, 1);
        for v in items(10) {
            live.ingest(&v);
        }
        let journal = live.journal().expect("journal");
        journal.barrier();
        assert_eq!(journal.appended(), 10);
        assert_eq!(journal.durable(), 10);
        assert_eq!(journal.lag(), 0);
        let text = live.metrics_registry().render_prometheus();
        assert!(
            text.contains("alid_service_journal_appends_total 10"),
            "journal series must render: {text}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gap_between_snapshot_and_journal_is_refused() {
        let dir = temp_dir("gap");
        let live = journaled_service(&dir, 1);
        for v in items(6) {
            live.ingest(&v);
        }
        live.journal().expect("journal").barrier();
        drop(live);
        // Claim the snapshot is *behind* the journal's start: frames
        // 0.. exist but recovery expects to begin past them — fine.
        // The reverse (journal starts after the snapshot) must fail.
        fs::remove_file(segment_path(&dir, 0)).expect("drop segment 0");
        // Re-create a later segment only.
        let live2 = {
            let cfg = ServiceConfig::new(2, 1, crate::service::tests::test_params()).with_batch(8);
            let svc = Service::new(cfg);
            // Opening against the now-empty dir at position 0 creates
            // a fresh segment claiming first_pos 0 — drop it and
            // hand-craft one starting at 4 instead.
            drop(recover_and_open(JournalConfig { dir: dir.clone(), compact_every: 0 }, &svc, 0));
            svc
        };
        drop(live2);
        for (_, p) in list_segments(&dir).expect("list") {
            fs::remove_file(p).expect("clean");
        }
        drop(open_segment(&dir, 7, 4).expect("hand-made segment"));
        // Write one complete frame at position 4 so the segment is
        // non-empty and recovery must confront the gap.
        let mut frame = Vec::new();
        encode_frame(&mut frame, &Json::object([("t", "d".to_json())]));
        let mut f = OpenOptions::new().append(true).open(segment_path(&dir, 7)).expect("open");
        f.write_all(&frame).expect("frame");
        drop(f);
        let cfg = ServiceConfig::new(2, 1, crate::service::tests::test_params()).with_batch(8);
        let fresh = Service::new(cfg);
        let err = recover_and_open(JournalConfig { dir: dir.clone(), compact_every: 0 }, &fresh, 0)
            .expect_err("a position gap must refuse recovery");
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
