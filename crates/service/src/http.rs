//! A std-only HTTP/1.1 JSON front end for the sharded service.
//!
//! No framework, no async runtime, no dependencies beyond `std` and
//! the workspace shims: a `TcpListener`, a handful of acceptor
//! threads, and hand-rolled request parsing. The split of work is
//! deliberate — acceptor threads own the *I/O* (blocking reads and
//! writes, which the exec pool's phase model rightly excludes), while
//! every CPU-heavy step a request triggers (the cross-shard drain, the
//! shard sweeps it may cascade into) runs through the shared
//! [`alid_exec`] pool via the service's `ExecPolicy` — the same
//! substrate every other parallel phase in the workspace uses.
//!
//! Endpoints (all responses `application/json`):
//!
//! | method & path | body | effect |
//! |---|---|---|
//! | `GET /healthz` | — | liveness + per-shard depth metrics (queue depth, busy refusals) |
//! | `POST /ingest` | `{"items": [[f64,...],...], "apply": bool?}` | admit a batch (bounded queues, `busy` verdicts; any refusal adds a `Retry-After` header + `retry_after_ms` hint derived from the fullest refusing queue), then drain unless `apply` is `false` |
//! | `GET /assign?id=N` | — | placement + cluster of an admitted item |
//! | `POST /assign` | `{"vector": [f64,...]}` | read-only attachment probe |
//! | `GET /clusters?k=N` | — | top-k densest shard-local clusters (the raw fragment ranking) |
//! | `GET /clusters?view=merged&k=N` | — | top-k of the fully reduced view: cross-shard fragments joined by union re-detection (`Service::top_k_merged`), plus the reduction's cost telemetry |
//! | `POST /snapshot` | — | drain, then write a binary snapshot to the server's configured `--snapshot` path (never a client-supplied one) |
//! | `GET /metrics` | — | Prometheus text exposition (`text/plain`): the service's private registry, live per-shard depth gauges, and the process-global registry (exec pool, autotuners, peeler, tracer) |
//!
//! Keep-alive is honoured (`Connection: close` to opt out); malformed
//! requests get `400`, unknown routes `404`, oversized bodies `413`.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Json, Serialize};

use crate::service::Service;
use crate::snapshot::snapshot_bytes_with_meta;

/// Upper bound on request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Upper bound on request bodies (a generous batch of vectors).
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Socket-level blocking-read timeout — the granularity at which a
/// blocked read wakes up to check its absolute deadline.
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Absolute deadline for receiving one complete request head. A
/// slow-drip client (one byte per second, never a newline) defeats a
/// per-read timeout; it cannot defeat this. Also the idle keep-alive
/// window: the acceptor model is thread-per-connection, so a parked
/// idle connection holds an acceptor — after this long without a new
/// request it is closed and the acceptor returns to `accept()`.
const HEAD_DEADLINE: Duration = Duration::from_secs(10);
/// Absolute deadline for receiving one complete request body (64 MB
/// at loopback/LAN rates takes well under this).
const BODY_DEADLINE: Duration = Duration::from_secs(60);

/// Whether a read error is a per-read socket timeout (a stall to ride
/// out under an absolute deadline) rather than a dead connection.
fn stalled(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// The front end's write-side telemetry, registered into the served
/// service's private registry so one `GET /metrics` covers both.
struct HttpMetrics {
    accepts: Arc<alid_obs::Counter>,
    requests: Arc<alid_obs::Counter>,
    keepalive_reuses: Arc<alid_obs::Counter>,
    deadline_closes: Arc<alid_obs::Counter>,
    /// Per-endpoint request latency, one series per known route.
    by_path: Vec<(&'static str, Arc<alid_obs::Histogram>)>,
    other_path: Arc<alid_obs::Histogram>,
    snapshot_seconds: Arc<alid_obs::Histogram>,
    snapshot_bytes: Arc<alid_obs::Gauge>,
    /// Guards journal-triggered auto-compaction: at most one snapshot
    /// fold runs per server at a time; overlapping triggers are
    /// dropped (the journal simply keeps growing until the next one).
    compaction_guard: std::sync::atomic::AtomicBool,
}

impl HttpMetrics {
    fn new(r: &alid_obs::Registry) -> Self {
        const HELP: &str = "Request wall time from parsed head to written response";
        const ROUTES: [&str; 6] =
            ["/healthz", "/ingest", "/assign", "/clusters", "/snapshot", "/metrics"];
        Self {
            accepts: r.counter("alid_http_accepts_total", "Connections accepted", &[]),
            requests: r.counter("alid_http_requests_total", "Requests served", &[]),
            keepalive_reuses: r.counter(
                "alid_http_keepalive_reuses_total",
                "Requests served on an already-used keep-alive connection",
                &[],
            ),
            deadline_closes: r.counter(
                "alid_http_deadline_closes_total",
                "Connections closed by the head/body deadlines (incl. idle keep-alive expiry)",
                &[],
            ),
            by_path: ROUTES
                .iter()
                .map(|p| (*p, r.histogram("alid_http_request_seconds", HELP, &[("path", p)])))
                .collect(),
            other_path: r.histogram("alid_http_request_seconds", HELP, &[("path", "other")]),
            snapshot_seconds: r.histogram(
                "alid_service_snapshot_seconds",
                "Wall time of one POST /snapshot (drain + serialize + rename)",
                &[],
            ),
            snapshot_bytes: r.gauge(
                "alid_service_snapshot_bytes",
                "Size of the most recently written snapshot",
                &[],
            ),
            compaction_guard: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// A latency timer for the request's (normalized) route.
    fn request_timer(&self, path: &str) -> alid_obs::Timer<'_> {
        self.by_path
            .iter()
            .find(|(p, _)| *p == path)
            .map(|(_, h)| h)
            .unwrap_or(&self.other_path)
            .start_timer()
    }
}

/// Front-end options.
#[derive(Clone, Debug)]
pub struct HttpOptions {
    /// Acceptor thread count (each owns one connection at a time).
    pub http_workers: usize,
    /// The one path `POST /snapshot` may write (`--snapshot`); the
    /// endpoint is disabled when unset. Deliberately never taken from
    /// the request — that would be an arbitrary remote file write.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for HttpOptions {
    fn default() -> Self {
        Self { http_workers: 4, snapshot_path: None }
    }
}

/// Live-connection registry: lets [`HttpServer::shutdown`] close
/// in-flight keep-alive connections instead of waiting out their read
/// timeouts.
#[derive(Default)]
struct Connections {
    live: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl Connections {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.live.lock().expect("connection registry").insert(id, clone);
        Some(id)
    }

    fn unregister(&self, id: u64) {
        self.live.lock().expect("connection registry").remove(&id);
    }

    fn close_all(&self) {
        for stream in self.live.lock().expect("connection registry").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A running front end. Dropping the handle leaves the acceptors
/// serving; call [`HttpServer::shutdown`] for an orderly stop or
/// [`HttpServer::join`] to serve forever.
pub struct HttpServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<Connections>,
    handles: Vec<JoinHandle<()>>,
}

/// Binds `addr` and starts serving `service` on
/// [`HttpOptions::http_workers`] acceptor threads.
pub fn start(
    service: Arc<Service>,
    addr: impl ToSocketAddrs,
    opts: HttpOptions,
) -> io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(Connections::default());
    let metrics = Arc::new(HttpMetrics::new(service.metrics_registry()));
    let workers = opts.http_workers.max(1);
    let mut handles = Vec::with_capacity(workers);
    for t in 0..workers {
        let listener = listener.try_clone()?;
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let connections = Arc::clone(&connections);
        let metrics = Arc::clone(&metrics);
        let opts = opts.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("alid-http-{t}"))
                .spawn(move || acceptor_loop(listener, service, opts, stop, connections, metrics))
                .expect("spawn http acceptor"),
        );
    }
    Ok(HttpServer { local, stop, connections, handles })
}

impl HttpServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the acceptors and joins them. In-flight requests finish
    /// their current response; idle keep-alive connections are closed;
    /// queued-but-unaccepted connections are dropped.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock acceptors parked in blocking reads on idle
        // connections...
        self.connections.close_all();
        // ...and those parked in accept(), with one dummy connection
        // each.
        for _ in 0..self.handles.len() {
            let _ = TcpStream::connect(self.local);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }

    /// Blocks forever serving (the `alid serve` main loop).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    service: Arc<Service>,
    opts: HttpOptions,
    stop: Arc<AtomicBool>,
    connections: Arc<Connections>,
    metrics: Arc<HttpMetrics>,
) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                metrics.accepts.inc();
                let id = connections.register(&stream);
                // Per-connection errors (resets, malformed requests)
                // must never take the acceptor down.
                let _ = handle_connection(stream, &service, &opts, &metrics);
                if let Some(id) = id {
                    connections.unregister(id);
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: Vec<u8>,
    keep_alive: bool,
}

/// A handler-level failure: status code + message for the JSON error
/// body.
struct HttpError {
    status: u16,
    message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self { status, message: message.into() }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<Service>,
    opts: &HttpOptions,
    m: &HttpMetrics,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut served = 0u64;
    loop {
        let request = match read_request(&mut reader, &mut writer, m) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean EOF between requests
            Err(e) => {
                write_response(&mut writer, e.status, &Reply::from(error_body(&e.message)), false)?;
                return Ok(());
            }
        };
        m.requests.inc();
        if served > 0 {
            m.keepalive_reuses.inc();
        }
        served += 1;
        let _request_timer = m.request_timer(&request.path);
        let keep_alive = request.keep_alive;
        let (status, reply) = match dispatch(&request, service, opts, m) {
            Ok(reply) => (200, reply),
            Err(e) => (e.status, Reply::from(error_body(&e.message))),
        };
        write_response(&mut writer, status, &reply, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

fn error_body(message: &str) -> Json {
    Json::object([("error", message.to_json())])
}

/// A response payload. Every route answers JSON except `GET /metrics`,
/// whose Prometheus exposition is plain text by spec.
enum Body {
    Json(Json),
    Text(String),
}

/// A handler's answer: the body plus any extra response headers
/// (today only `Retry-After` on backpressured ingests).
struct Reply {
    body: Body,
    headers: Vec<(&'static str, String)>,
}

impl From<Json> for Reply {
    fn from(body: Json) -> Self {
        Self { body: Body::Json(body), headers: Vec::new() }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        501 => "Not Implemented",
        _ => "Internal Server Error",
    }
}

fn write_response(
    w: &mut impl Write,
    status: u16,
    reply: &Reply,
    keep_alive: bool,
) -> io::Result<()> {
    let (rendered, content_type): (std::borrow::Cow<str>, &str) = match &reply.body {
        Body::Json(j) => (
            serde_json::to_string(j).expect("shim serialization is total").into(),
            "application/json",
        ),
        // version=0.0.4 is the Prometheus text exposition format tag.
        Body::Text(t) => (t.as_str().into(), "text/plain; version=0.0.4"),
    };
    // One buffer, one write: a head written separately would sit in
    // Nagle's queue waiting for the peer's delayed ACK (~40ms per
    // request) — the closed-loop latency killer.
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_text(status),
        rendered.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &reply.headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(&rendered);
    w.write_all(response.as_bytes())?;
    w.flush()
}

/// Reads one line (up to `\n`) with a hard byte cap and an absolute
/// deadline, via the `BufRead` internals — `read_line` alone checks
/// nothing until a newline arrives, so a peer streaming an endless
/// header (or dripping one byte per second) could buffer unbounded
/// memory / hold the acceptor forever.
///
/// Returns `Ok(0)` on EOF before any byte. Errors: timeout/reset mid-
/// line, the cap, or the deadline.
fn bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    cap: usize,
    deadline: Instant,
) -> io::Result<usize> {
    // Bytes accumulate raw and are decoded *once* at the end: a
    // multibyte UTF-8 character can straddle two fill_buf chunks, and
    // per-chunk lossy decoding would corrupt each half into U+FFFD.
    let mut raw: Vec<u8> = Vec::new();
    loop {
        if Instant::now() > deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "request head deadline"));
        }
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            // Per-read socket timeout = stall; the absolute deadline
            // above decides when to give up.
            Err(e) if stalled(&e) => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            break; // EOF
        }
        let (take, found_nl) = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => (nl + 1, true),
            None => (buf.len(), false),
        };
        if raw.len() + take > cap {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "line exceeds head cap"));
        }
        raw.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if found_nl {
            break;
        }
    }
    let total = raw.len();
    line.push_str(&String::from_utf8_lossy(&raw));
    Ok(total)
}

/// Reads one request head + body. `Ok(None)` on clean EOF before any
/// byte of a new request. `writer` is only touched for the interim
/// `100 Continue` response some clients (curl with bodies over ~1 KB)
/// wait for before transmitting their body — without it every large
/// ingest request stalls on the client's expect timeout (~1 s).
fn read_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    m: &HttpMetrics,
) -> Result<Option<Request>, HttpError> {
    // The whole head must arrive within this window — a slow-drip
    // client cannot hold the acceptor past it (each blocking read is
    // additionally bounded by the socket read timeout).
    let deadline = Instant::now() + HEAD_DEADLINE;
    let mut line = String::new();
    match bounded_line(reader, &mut line, MAX_HEAD_BYTES, deadline) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Err(HttpError::new(400, "request head too large"))
        }
        Err(e) => {
            // Reset/timeout between requests; the timeout flavour is
            // the head deadline reaping an idle keep-alive connection.
            if e.kind() == io::ErrorKind::TimedOut {
                m.deadline_closes.inc();
            }
            return Ok(None);
        }
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, "malformed request line"));
    }
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut expect_continue = false;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        let remaining = MAX_HEAD_BYTES.saturating_sub(head_bytes).max(1);
        match bounded_line(reader, &mut header, remaining, deadline) {
            Ok(0) => return Err(HttpError::new(400, "connection dropped mid-headers")),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(HttpError::new(400, "request head too large"))
            }
            Err(e) => {
                if e.kind() == io::ErrorKind::TimedOut {
                    m.deadline_closes.inc();
                }
                return Err(HttpError::new(400, "connection dropped mid-headers"));
            }
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::new(400, "request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::new(400, "malformed header"));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length =
                    value.parse().map_err(|_| HttpError::new(400, "invalid Content-Length"))?;
            }
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
            "transfer-encoding" => {
                // No chunked decoder: silently misframing the chunk
                // stream as the next request would desync the whole
                // keep-alive connection, so refuse loudly (the
                // handler closes the connection on errors).
                return Err(HttpError::new(
                    501,
                    "Transfer-Encoding is not supported; send a Content-Length body",
                ));
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    // Same slow-drip defence as the head: an absolute deadline on the
    // whole body, not just the per-read socket timeout (a client
    // dripping one byte per READ_TIMEOUT would never trip that).
    if expect_continue && content_length > 0 {
        writer
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| writer.flush())
            .map_err(|_| HttpError::new(400, "connection dropped before body"))?;
    }
    let body_deadline = Instant::now() + BODY_DEADLINE;
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        if Instant::now() > body_deadline {
            m.deadline_closes.inc();
            return Err(HttpError::new(400, "request body deadline exceeded"));
        }
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::new(400, "connection dropped mid-body")),
            Ok(n) => filled += n,
            // A per-read socket timeout is a *stall*, not a drop: keep
            // reading until the absolute deadline decides.
            Err(e) if stalled(&e) => {}
            Err(_) => return Err(HttpError::new(400, "connection dropped mid-body")),
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Some(Request { method, path, query, body, keep_alive }))
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

fn query_param<'a>(req: &'a Request, key: &str) -> Option<&'a str> {
    req.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn parse_body(req: &Request) -> Result<Json, HttpError> {
    if req.body.is_empty() {
        return Ok(Json::Null);
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError::new(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| HttpError::new(400, format!("invalid JSON body: {e}")))
}

fn dispatch(
    req: &Request,
    service: &Arc<Service>,
    opts: &HttpOptions,
    m: &HttpMetrics,
) -> Result<Reply, HttpError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(healthz(service).into()),
        ("GET", "/metrics") => Ok(metrics_text(service)),
        ("POST", "/ingest") => ingest(req, service, opts, m),
        ("GET", "/assign") => assign_by_id(req, service).map(Reply::from),
        ("POST", "/assign") => assign_by_vector(req, service).map(Reply::from),
        ("GET", "/clusters") => clusters(req, service).map(Reply::from),
        ("POST", "/snapshot") => snapshot(req, service, opts, m).map(Reply::from),
        ("GET" | "POST", _) => Err(HttpError::new(404, format!("no route {}", req.path))),
        _ => Err(HttpError::new(405, format!("method {} not allowed", req.method))),
    }
}

/// `GET /metrics`: the full Prometheus exposition, composed from three
/// sources — this service's private registry (admission, drain, reduce
/// and HTTP series), live per-shard depth gauges sampled at scrape
/// time from one [`Service::depths`] call, and the process-global
/// registry (exec pool, autotuners, peeler, tracer).
fn metrics_text(service: &Service) -> Reply {
    use alid_obs::expo;
    // alid-lint: allow(no-metric-branching) -- this IS the exposition surface
    let mut out = service.metrics_registry().render_prometheus();
    let depths = service.depths();
    type DepthPick = fn(&crate::service::ShardDepth) -> f64;
    let gauges: [(&str, &str, DepthPick); 4] = [
        ("alid_service_shard_queued", "Admitted-but-unapplied items per shard", |d| {
            d.queued as f64
        }),
        ("alid_service_shard_pending", "Applied-but-unexplained items per shard", |d| {
            d.pending as f64
        }),
        ("alid_service_shard_items", "Applied items per shard", |d| d.items as f64),
        ("alid_service_shard_clusters", "Dominant clusters per shard", |d| d.clusters as f64),
    ];
    for (name, help, pick) in gauges {
        expo::write_header(&mut out, name, help, "gauge");
        for (s, d) in depths.iter().enumerate() {
            let labels = [("shard".to_string(), s.to_string())];
            expo::write_sample(&mut out, name, &labels, &format!("{}", pick(d)));
        }
    }
    // alid-lint: allow(no-metric-branching) -- this IS the exposition surface
    out.push_str(&alid_obs::global().render_prometheus());
    Reply { body: Body::Text(out), headers: Vec::new() }
}

fn healthz(service: &Service) -> Json {
    let depths = service.depths();
    let clusters: usize = depths.iter().map(|d| d.clusters).sum();
    let busy: u64 = depths.iter().map(|d| d.busy).sum();
    let mut fields = vec![
        ("status", "ok".to_json()),
        ("schema", "alid-service/1".to_json()),
        ("shards", service.shard_count().to_json()),
        ("items", service.len().to_json()),
        ("clusters", clusters.to_json()),
        ("busy_total", busy.to_json()),
        ("depths", depths.to_json()),
    ];
    if let Some(j) = service.journal() {
        fields.push((
            "journal",
            Json::object([
                ("appended", j.appended().to_json()),
                ("durable", j.durable().to_json()),
                ("lag", j.lag().to_json()),
            ]),
        ));
    }
    Json::object(fields)
}

fn vector_from_json(j: &Json, dim: usize) -> Result<Vec<f64>, HttpError> {
    let arr = j.as_arr().ok_or_else(|| HttpError::new(400, "vector must be an array"))?;
    if arr.len() != dim {
        return Err(HttpError::new(
            400,
            format!("vector has {} coordinates, service dimensionality is {dim}", arr.len()),
        ));
    }
    arr.iter()
        .map(|x| x.as_f64().ok_or_else(|| HttpError::new(400, "non-numeric vector coordinate")))
        .collect()
}

fn ingest(
    req: &Request,
    service: &Arc<Service>,
    opts: &HttpOptions,
    m: &HttpMetrics,
) -> Result<Reply, HttpError> {
    let body = parse_body(req)?;
    let items = body
        .get("items")
        .and_then(Json::as_arr)
        .ok_or_else(|| HttpError::new(400, "body must be {\"items\": [[..], ..]}"))?;
    let dim = service.config().dim;
    let mut vectors = Vec::with_capacity(items.len());
    for item in items {
        vectors.push(vector_from_json(item, dim)?);
    }
    let results = service.ingest_batch(vectors.iter().map(Vec::as_slice));
    let apply = body.get("apply").and_then(Json::as_bool).unwrap_or(true);
    let report = if apply { service.drain() } else { crate::service::DrainReport::default() };
    if let Some(j) = service.journal() {
        // Group commit: acknowledge only once this request's frames are
        // on disk. Concurrent requests waiting here share one fsync.
        j.barrier();
        if j.needs_compaction() {
            maybe_compact(service, opts, m);
        }
    }
    // Backpressure hint: the deepest refusing queue sets the backoff
    // (ROADMAP overload item (a), first slice). Clients that ignore
    // the header still see the per-item `busy` verdicts.
    let busiest = results
        .iter()
        .filter_map(|a| match a {
            crate::service::Admission::Busy { depth, .. } => Some(*depth),
            crate::service::Admission::Enqueued { .. } => None,
        })
        .max();
    let mut fields = vec![
        ("results", results.to_json()),
        ("applied", apply.to_json()),
        ("report", report.to_json()),
        ("depths", service.depths().to_json()),
    ];
    let mut headers = Vec::new();
    if let Some(depth) = busiest {
        let ms = Service::retry_after_hint_ms(depth);
        fields.push(("retry_after_ms", ms.to_json()));
        // Retry-After is specified in whole seconds; round up so the
        // hint never undercuts itself.
        headers.push(("Retry-After", ms.div_ceil(1000).max(1).to_string()));
    }
    Ok(Reply { body: Body::Json(Json::object(fields)), headers })
}

fn assign_by_id(req: &Request, service: &Service) -> Result<Json, HttpError> {
    let id: u64 = query_param(req, "id")
        .ok_or_else(|| HttpError::new(400, "missing ?id="))?
        .parse()
        .map_err(|_| HttpError::new(400, "?id= must be an unsigned integer"))?;
    match service.assignment(id) {
        None => Err(HttpError::new(404, format!("unknown item id {id}"))),
        Some(assigned) => {
            let cluster = match assigned {
                Some(c) => {
                    Json::object([("shard", c.shard.to_json()), ("cluster", c.cluster.to_json())])
                }
                None => Json::Null,
            };
            Ok(Json::object([("id", id.to_json()), ("cluster", cluster)]))
        }
    }
}

fn assign_by_vector(req: &Request, service: &Service) -> Result<Json, HttpError> {
    let body = parse_body(req)?;
    let vector =
        body.get("vector").ok_or_else(|| HttpError::new(400, "body must be {\"vector\": [..]}"))?;
    let v = vector_from_json(vector, service.config().dim)?;
    let shard = service.route(&v);
    match service.probe(&v) {
        Some((cref, density)) => Ok(Json::object([
            ("shard", shard.to_json()),
            (
                "cluster",
                Json::object([
                    ("shard", cref.shard.to_json()),
                    ("cluster", cref.cluster.to_json()),
                    ("density", density.to_json()),
                ]),
            ),
        ])),
        None => Ok(Json::object([("shard", shard.to_json()), ("cluster", Json::Null)])),
    }
}

fn clusters(req: &Request, service: &Service) -> Result<Json, HttpError> {
    let k = match query_param(req, "k") {
        Some(k) => k
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, "?k= must be an unsigned integer"))?,
        None => usize::MAX,
    };
    match query_param(req, "view") {
        // The raw fragment ranking stays the default: existing
        // clients (and the parity suites pinned to them) see
        // unchanged answers.
        None | Some("raw") => Ok(Json::object([("clusters", service.top_k(k).to_json())])),
        Some("merged") => {
            let view = service.merged_view();
            Ok(Json::object([
                ("view", "merged".to_json()),
                ("clusters", view.clusters[..k.min(view.clusters.len())].to_json()),
                ("reduce", view.stats.to_json()),
            ]))
        }
        Some(other) => {
            Err(HttpError::new(400, format!("unknown ?view= {other:?} (raw or merged)")))
        }
    }
}

/// Serialises the service, durably writes the snapshot to `path`
/// (write-then-fsync-then-rename), and folds the journal: after the
/// snapshot is on disk, closed segments holding only frames the
/// snapshot already reflects are truncated. Returns
/// `(snapshot_bytes, journal_bytes_truncated)`.
fn write_snapshot_file(
    service: &Service,
    path: &std::path::Path,
    m: &HttpMetrics,
) -> std::io::Result<(usize, u64)> {
    let (bytes, cut) = snapshot_bytes_with_meta(service);
    m.snapshot_bytes.set(bytes.len() as f64);
    // Write-then-rename so the target is always a complete snapshot:
    // a crash mid-write (or a concurrent request) must never leave
    // the only snapshot torn — that is the durability the feature
    // exists for. The temp name is unique per request so concurrent
    // snapshots each rename a complete file (last one wins). The fsync
    // before the rename matters doubly now: journal segments are
    // truncated on the strength of this snapshot, so it must be
    // durable before any frame it replaces is dropped.
    static SNAP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SNAP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, &bytes)?;
        f.sync_all()
    };
    if let Err(e) = write().and_then(|()| std::fs::rename(&tmp, path)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    let truncated = match service.journal() {
        Some(j) => {
            // The barrier guarantees the writer has processed the
            // rotation the snapshot requested, so the pre-snapshot
            // segments are closed and eligible.
            j.barrier();
            j.truncate_below(cut)
        }
        None => 0,
    };
    Ok((bytes.len(), truncated))
}

/// Journal-growth-triggered compaction: folds the journal into the
/// snapshot exactly like `POST /snapshot`, but fired from the ingest
/// path once the journal has grown `--compact-every` bytes since the
/// last fold. At most one fold runs per server at a time; a failed
/// write is dropped (the journal keeps everything, so durability is
/// unaffected — the next trigger retries).
fn maybe_compact(service: &Arc<Service>, opts: &HttpOptions, m: &HttpMetrics) {
    let Some(path) = opts.snapshot_path.as_deref() else { return };
    if m.compaction_guard
        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        return;
    }
    let _snapshot_timer = m.snapshot_seconds.start_timer();
    let _ = write_snapshot_file(service, path, m);
    m.compaction_guard.store(false, Ordering::Release);
}

fn snapshot(
    req: &Request,
    service: &Arc<Service>,
    opts: &HttpOptions,
    m: &HttpMetrics,
) -> Result<Json, HttpError> {
    // The target path is fixed at server start (`--snapshot` /
    // `HttpOptions::snapshot_path`) and never taken from the request:
    // honouring a client-supplied path would hand every network peer
    // an arbitrary server-side file write.
    let _ = parse_body(req)?; // body, if any, must still be valid JSON
    let path: PathBuf = opts.snapshot_path.clone().ok_or_else(|| {
        HttpError::new(400, "snapshots disabled: server started without --snapshot")
    })?;
    // Quiesce the queues so the snapshot captures applied state, then
    // serialize and fold the journal.
    let _snapshot_timer = m.snapshot_seconds.start_timer();
    let started = std::time::Instant::now();
    service.drain();
    let (bytes, truncated) = write_snapshot_file(service, &path, m)
        .map_err(|e| HttpError::new(500, format!("writing {}: {e}", path.display())))?;
    Ok(Json::object([
        ("path", path.display().to_string().to_json()),
        ("bytes", bytes.to_json()),
        ("duration_ms", (started.elapsed().as_millis() as u64).to_json()),
        ("journal_truncated_bytes", truncated.to_json()),
    ]))
}

// --- client ------------------------------------------------------------

/// A minimal blocking keep-alive client for the front end, used by the
/// load generator, the CI smoke cycle and the integration tests.
pub struct Client {
    stream: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running front end.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self { stream: BufReader::new(stream) })
    }

    /// Sends one request and reads the JSON response. `body = None`
    /// sends no payload.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> io::Result<(u16, Json)> {
        let payload = body.map(|b| serde_json::to_string(b).expect("total")).unwrap_or_default();
        // Head + payload in one write (see write_response on Nagle).
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: alid\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            payload.len(),
        );
        request.push_str(&payload);
        let w = self.stream.get_mut();
        w.write_all(request.as_bytes())?;
        w.flush()?;
        self.read_response()
    }

    /// Sends one bodyless request and returns the raw response text —
    /// for the non-JSON endpoint (`GET /metrics`).
    pub fn request_text(&mut self, method: &str, path: &str) -> io::Result<(u16, String)> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: alid\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n",
        );
        let w = self.stream.get_mut();
        w.write_all(request.as_bytes())?;
        w.flush()?;
        self.read_raw()
    }

    fn read_response(&mut self) -> io::Result<(u16, Json)> {
        let (status, text) = self.read_raw()?;
        let json = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON body: {e}"))
        })?;
        Ok((status, json))
    }

    fn read_raw(&mut self) -> io::Result<(u16, String)> {
        let mut line = String::new();
        self.stream.read_line(&mut line)?;
        let status: u16 =
            line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {line:?}"))
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.stream.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok((status, text))
    }
}

/// Polls `GET /healthz` until the front end answers or the deadline
/// passes — the readiness gate external drivers (CI) need between
/// spawning `alid serve` and hammering it.
pub fn wait_ready(addr: &str, timeout: Duration) -> io::Result<()> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        match Client::connect(addr).and_then(|mut c| c.request("GET", "/healthz", None)) {
            Ok((200, _)) => return Ok(()),
            _ if std::time::Instant::now() >= deadline => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("{addr} not ready within {timeout:?}"),
                ))
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use alid_affinity::kernel::LaplacianKernel;
    use alid_core::AlidParams;

    fn test_service() -> Arc<Service> {
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = AlidParams::new(kernel);
        p.first_roi_radius = kernel.distance_at(0.5);
        p.density_threshold = 0.7;
        p.min_cluster_size = 3;
        p.lsh.seed = 5;
        Arc::new(Service::new(ServiceConfig::new(1, 2, p).with_batch(8)))
    }

    fn start_test_server() -> (HttpServer, String) {
        let server = start(
            test_service(),
            "127.0.0.1:0",
            HttpOptions { http_workers: 2, snapshot_path: None },
        )
        .expect("bind loopback");
        let addr = server.addr().to_string();
        (server, addr)
    }

    #[test]
    fn full_cycle_over_loopback() {
        let (server, addr) = start_test_server();
        let mut client = Client::connect(&addr).unwrap();

        let (status, health) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("shards").and_then(Json::as_u64), Some(2));

        // Ingest a tight run that must form one cluster.
        let items: Vec<Json> =
            (0..16).map(|i| Json::Arr(vec![Json::Num(i as f64 * 0.01)])).collect();
        let body = Json::object([("items", Json::Arr(items))]);
        let (status, resp) = client.request("POST", "/ingest", Some(&body)).unwrap();
        assert_eq!(status, 200, "{resp:?}");
        assert_eq!(resp.get("results").and_then(Json::as_arr).map(<[Json]>::len), Some(16));
        assert_eq!(
            resp.get("report").and_then(|r| r.get("applied")).and_then(Json::as_u64),
            Some(16)
        );

        let (status, c) = client.request("GET", "/clusters?k=5", None).unwrap();
        assert_eq!(status, 200);
        let clusters = c.get("clusters").and_then(Json::as_arr).unwrap();
        assert!(!clusters.is_empty(), "the tight run should be detected: {c:?}");

        let (status, a) = client.request("GET", "/assign?id=0", None).unwrap();
        assert_eq!(status, 200);
        assert!(!a.get("cluster").unwrap().is_null(), "item 0 should be explained: {a:?}");

        let probe = Json::object([("vector", Json::Arr(vec![Json::Num(0.05)]))]);
        let (status, p) = client.request("POST", "/assign", Some(&probe)).unwrap();
        assert_eq!(status, 200);
        assert!(!p.get("cluster").unwrap().is_null(), "{p:?}");

        let (status, e) = client.request("GET", "/assign?id=999", None).unwrap();
        assert_eq!(status, 404, "{e:?}");

        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_crash() {
        let (server, addr) = start_test_server();
        let mut client = Client::connect(&addr).unwrap();
        // Unparseable body.
        let w = client.stream.get_mut();
        w.write_all(b"POST /ingest HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{").unwrap();
        w.flush().unwrap();
        let (status, _) = client.read_response().unwrap();
        assert_eq!(status, 400);
        // The server survives for the next client.
        let mut c2 = Client::connect(&addr).unwrap();
        let (status, _) = c2.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    /// Regression: a request line streamed without a newline must hit
    /// the head cap (bounded memory, 400 or close) instead of growing
    /// a String until the process OOMs — `read_line` alone checks
    /// nothing until the newline arrives.
    #[test]
    fn endless_header_line_is_capped_not_buffered() {
        let (server, addr) = start_test_server();
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // 4x the head cap, no newline anywhere.
        let flood = vec![b'a'; 4 * MAX_HEAD_BYTES];
        // The server may close mid-write once the cap trips; both a
        // successful send and a broken pipe are acceptable here.
        let _ = raw.write_all(&flood);
        let mut response = String::new();
        let _ = raw.read_to_string(&mut response);
        assert!(
            response.is_empty() || response.starts_with("HTTP/1.1 400"),
            "unexpected response: {response:?}"
        );
        // The acceptor survives for the next client.
        let mut c = Client::connect(&addr).unwrap();
        let (status, _) = c.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn merged_view_endpoint_serves_the_reduction_and_rejects_unknown_views() {
        let (server, addr) = start_test_server();
        let mut client = Client::connect(&addr).unwrap();
        let items: Vec<Json> =
            (0..16).map(|i| Json::Arr(vec![Json::Num(i as f64 * 0.01)])).collect();
        let body = Json::object([("items", Json::Arr(items))]);
        let (status, _) = client.request("POST", "/ingest", Some(&body)).unwrap();
        assert_eq!(status, 200);
        let (status, m) = client.request("GET", "/clusters?view=merged&k=5", None).unwrap();
        assert_eq!(status, 200, "{m:?}");
        assert_eq!(m.get("view").and_then(Json::as_str), Some("merged"));
        let clusters = m.get("clusters").and_then(Json::as_arr).unwrap();
        assert!(!clusters.is_empty(), "{m:?}");
        for c in clusters {
            assert!(c.get("fragments").and_then(Json::as_arr).is_some(), "{c:?}");
            assert!(c.get("density").and_then(Json::as_f64).is_some());
        }
        let reduce = m.get("reduce").expect("reduce stats");
        assert!(reduce.get("pairs_tested").and_then(Json::as_u64).is_some(), "{reduce:?}");
        // The raw view's shape is untouched.
        let (status, raw) = client.request("GET", "/clusters?view=raw", None).unwrap();
        assert_eq!(status, 200);
        assert!(raw.get("view").is_none(), "raw view keeps the original shape");
        let (status, e) = client.request("GET", "/clusters?view=bogus", None).unwrap();
        assert_eq!(status, 400, "{e:?}");
        server.shutdown();
    }

    #[test]
    fn busy_ingest_carries_a_retry_after_hint_and_healthz_counts_it() {
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = AlidParams::new(kernel);
        p.lsh.seed = 5;
        let service = Arc::new(Service::new(ServiceConfig::new(1, 1, p).with_queue_capacity(2)));
        let server = start(service, "127.0.0.1:0", HttpOptions::default()).expect("bind");
        let addr = server.addr().to_string();
        // Six admissions into a two-slot queue without draining: four
        // must be refused, and the response must carry the hint both
        // as JSON and as a Retry-After header (checked on the raw
        // bytes — the test client strips headers).
        let payload = r#"{"items":[[0.1],[0.2],[0.3],[0.4],[0.5],[0.6]],"apply":false}"#;
        let request = format!(
            "POST /ingest HTTP/1.1\r\nHost: alid\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        );
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        raw.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("\r\nRetry-After: 1\r\n"), "{response}");
        assert!(response.contains("\"retry_after_ms\":25"), "{response}");
        let mut client = Client::connect(&addr).unwrap();
        let (status, health) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(health.get("busy_total").and_then(Json::as_u64), Some(4), "{health:?}");
        let depths = health.get("depths").and_then(Json::as_arr).unwrap();
        assert_eq!(depths[0].get("busy").and_then(Json::as_u64), Some(4));
        assert_eq!(depths[0].get("queued").and_then(Json::as_u64), Some(2));
        // A fully admitted batch carries no hint.
        let ok = Json::object([("items", Json::Arr(vec![])), ("apply", Json::Bool(false))]);
        let (status, resp) = client.request("POST", "/ingest", Some(&ok)).unwrap();
        assert_eq!(status, 200);
        assert!(resp.get("retry_after_ms").is_none(), "{resp:?}");
        server.shutdown();
    }

    #[test]
    fn unknown_route_and_method() {
        let (server, addr) = start_test_server();
        let mut client = Client::connect(&addr).unwrap();
        let (status, _) = client.request("GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.request("PUT", "/ingest", None).unwrap();
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn snapshot_endpoint_writes_a_restorable_file() {
        let path = std::env::temp_dir().join(format!("alid_snap_test_{}.bin", std::process::id()));
        let server = start(
            test_service(),
            "127.0.0.1:0",
            HttpOptions { http_workers: 2, snapshot_path: Some(path.clone()) },
        )
        .expect("bind loopback");
        let addr = server.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let items: Vec<Json> =
            (0..12).map(|i| Json::Arr(vec![Json::Num(i as f64 * 0.01)])).collect();
        let body = Json::object([("items", Json::Arr(items))]);
        client.request("POST", "/ingest", Some(&body)).unwrap();
        // A client-supplied path must be ignored: only the configured
        // path is written.
        let evil = std::env::temp_dir().join(format!("alid_evil_{}.bin", std::process::id()));
        let body = Json::object([("path", Json::Str(evil.display().to_string()))]);
        let (status, resp) = client.request("POST", "/snapshot", Some(&body)).unwrap();
        assert_eq!(status, 200, "{resp:?}");
        assert!(!evil.exists(), "client-supplied snapshot path must never be written");
        assert_eq!(
            resp.get("path").and_then(Json::as_str),
            Some(path.display().to_string().as_str())
        );
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, resp.get("bytes").and_then(Json::as_u64).unwrap());
        assert!(resp.get("duration_ms").and_then(Json::as_u64).is_some(), "{resp:?}");
        // No journal attached: nothing to truncate, but the field is
        // always present so clients can rely on the shape.
        assert_eq!(resp.get("journal_truncated_bytes").and_then(Json::as_u64), Some(0));
        let restored = crate::snapshot::restore(&bytes, alid_exec::ExecPolicy::sequential())
            .expect("snapshot restores");
        assert_eq!(restored.len(), 12);
        let _ = std::fs::remove_file(&path);
        server.shutdown();
    }

    /// The `/metrics` scrape: plain-text exposition with `HELP`/`TYPE`
    /// metadata, series from the HTTP and service layers, per-shard
    /// depth gauges, and cumulative (monotone) histogram buckets
    /// ending at `le="+Inf"`.
    #[test]
    fn metrics_scrape_is_valid_exposition() {
        let (server, addr) = start_test_server();
        let mut client = Client::connect(&addr).unwrap();
        let items: Vec<Json> =
            (0..16).map(|i| Json::Arr(vec![Json::Num(i as f64 * 0.01)])).collect();
        let body = Json::object([("items", Json::Arr(items))]);
        let (status, _) = client.request("POST", "/ingest", Some(&body)).unwrap();
        assert_eq!(status, 200);
        let (status, text) = client.request_text("GET", "/metrics").unwrap();
        assert_eq!(status, 200);
        for series in [
            "alid_http_accepts_total",
            "alid_http_requests_total",
            "alid_service_admitted_total 16",
            "alid_service_drains_total 1",
            "alid_service_shard_queued{shard=\"0\"} 0",
            "alid_service_shard_items{shard=\"1\"}",
        ] {
            assert!(text.contains(series), "missing `{series}` in scrape:\n{text}");
        }
        assert!(text.contains("# TYPE alid_http_requests_total counter"), "{text}");
        assert!(text.contains("# TYPE alid_service_shard_queued gauge"), "{text}");
        assert!(text.contains("# TYPE alid_http_request_seconds histogram"), "{text}");
        // The ingest served above is in its per-endpoint latency series.
        assert!(text.contains("alid_http_request_seconds_count{path=\"/ingest\"} 1"), "{text}");
        // Histogram buckets are cumulative (monotone nondecreasing) and
        // the family terminates at the +Inf bucket == _count.
        let prefix = "alid_http_request_seconds_bucket{path=\"/ingest\"";
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with(prefix))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.len() > 8, "expected a full bucket ladder:\n{text}");
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "non-cumulative buckets: {buckets:?}");
        let inf = text
            .lines()
            .find(|l| l.starts_with(prefix) && l.contains("le=\"+Inf\""))
            .expect("+Inf bucket present");
        assert!(inf.ends_with(" 1"), "{inf}");
        // Every non-comment line parses as `series value`.
        for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample shape");
            assert!(!series.is_empty() && value.parse::<f64>().is_ok(), "bad sample: {line}");
        }
        server.shutdown();
    }

    #[test]
    fn wait_ready_times_out_on_dead_port() {
        let err = wait_ready("127.0.0.1:1", Duration::from_millis(200)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
