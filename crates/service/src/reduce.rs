//! The cross-shard reduce pipeline — PALID's reduce phase (Fig. 5)
//! done properly on partitioned data.
//!
//! The paper's reduce does more than rank overlapping detections by
//! maximum density: on partitioned data it must *unify* a dominant
//! cluster whose members landed in different partitions. The sharded
//! service hits exactly that case when a tight cluster straddles a
//! routing hyperplane — each shard detects its fragment, and a
//! rank-only merge reports two clusters where a single-instance run
//! reports one. This module resolves it the ALID-native way, in four
//! stages:
//!
//! 1. **Cut** (`Service::reduce_cut`): under all shard locks + the
//!    placement lock — the snapshot codec's consistent-cut discipline
//!    — every shard-local cluster becomes a [`FragmentCut`]: global
//!    member ids, density, its
//!    [`MergeEvidence`](alid_core::streaming::MergeEvidence)
//!    (centroid + bounded support sample) and the router signature of
//!    its centroid.
//! 2. **Candidate generation** ([`candidate_groups`]): fragments of a
//!    straddling cluster have near-identical centroid signatures *by
//!    construction* (their centroids nearly coincide, so at most the
//!    straddled planes separate them), so candidate pairs come from
//!    signature buckets probed within a small Hamming radius —
//!    `O(fragments · probes)`, never an all-pairs scan. Only
//!    cross-shard pairs qualify: two clusters on one shard were
//!    separated by the dynamics *with both visible*, and re-merging
//!    them would second-guess the core algorithm.
//! 3. **Affinity test + union re-detection** ([`merge`]): a pair
//!    links when the kernel affinity between the fragments' centroids
//!    and between their support samples clears the detection
//!    threshold; linked fragments are grouped (union-find) and each
//!    group's member union is re-detected with
//!    [`alid_core::detect_on_subset`] — the full LID/ROI/CIVS
//!    dynamics on the union, honouring `ExecPolicy`, byte-identical
//!    for any worker count.
//! 4. **Max-density resolution**: the original fragments and the
//!    dominant union re-detections all stand as *claims* on their
//!    member ids, resolved exactly like the paper's reducer — highest
//!    density wins, ties broken by the smallest `(shard, cluster)`
//!    representative — so a union cluster only displaces its
//!    fragments by actually out-densifying them (an m-clique's
//!    density grows with m as `(m-1)/m`, so a genuine join always
//!    does), while a failed re-detection leaves the raw fragments
//!    standing.
//!
//! The whole view is a pure function of the cut shard states: reruns,
//! worker counts and snapshot/restore boundaries all produce
//! bit-identical merged clusters, and the re-detected clusters are a
//! pure function of the member *union* — the shard-count invariance
//! the straddling-fixture tests assert.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use alid_affinity::block::BlockEval;
use alid_affinity::cost::CostModel;
use alid_affinity::kernel::LaplacianKernel;
use alid_affinity::vector::Dataset;
use alid_core::streaming::MergeEvidence;
use alid_core::{detect_on_subset, AlidParams};
use alid_lsh::ShardRouter;
use serde::{Json, Serialize};

use crate::service::ClusterRef;

/// One cluster of the merged view: either a raw shard-local cluster
/// that survived the reduction untouched, or the union re-detection
/// of several cross-shard fragments.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedCluster {
    /// The representative address — the smallest `(shard, cluster)`
    /// among [`Self::fragments`] — used as the deterministic
    /// tie-break identity of the claim.
    pub rep: ClusterRef,
    /// The shard-local clusters this claim covers (one entry for an
    /// unmerged cluster; two or more for a joined straddler).
    pub fragments: Vec<ClusterRef>,
    /// Global item ids, ascending.
    pub members: Vec<u64>,
    /// Graph density `π(x)`: the shard's incremental density for an
    /// unmerged cluster, the re-detected union density for a join.
    pub density: f64,
}

impl MergedCluster {
    /// Member count.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether this cluster joined two or more shard-local fragments.
    pub fn is_merged(&self) -> bool {
        self.fragments.len() >= 2
    }
}

impl Serialize for MergedCluster {
    fn to_json(&self) -> Json {
        let fragments = Json::Arr(
            self.fragments
                .iter()
                .map(|f| {
                    Json::object([("shard", f.shard.to_json()), ("cluster", f.cluster.to_json())])
                })
                .collect(),
        );
        Json::object([
            ("shard", self.rep.shard.to_json()),
            ("cluster", self.rep.cluster.to_json()),
            ("size", self.size().to_json()),
            ("density", self.density.to_json()),
            ("fragments", fragments),
        ])
    }
}

/// What one reduction did — the merge-cost telemetry `bench_service`
/// reports (pairs tested, unions re-run) and `/clusters?view=merged`
/// returns alongside the clusters. Deterministic: a pure function of
/// the cut, like the view itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Shard-local clusters entering the reduction.
    pub fragments: usize,
    /// Candidate pairs the signature probes surfaced (all of which
    /// paid an affinity test).
    pub pairs_tested: usize,
    /// Candidate pairs whose affinity cleared the threshold.
    pub pairs_linked: usize,
    /// Multi-fragment groups whose member union was re-detected.
    pub groups_rerun: usize,
    /// Total items across all re-detected unions.
    pub union_items: usize,
    /// Merged-view clusters that joined two or more fragments.
    pub clusters_merged: usize,
}

impl Serialize for ReduceStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("fragments", self.fragments.to_json()),
            ("pairs_tested", self.pairs_tested.to_json()),
            ("pairs_linked", self.pairs_linked.to_json()),
            ("groups_rerun", self.groups_rerun.to_json()),
            ("union_items", self.union_items.to_json()),
            ("clusters_merged", self.clusters_merged.to_json()),
        ])
    }
}

/// The reduced cross-shard view: claims resolved by maximum density,
/// ranked exactly like `Service::top_k` (density descending, ties by
/// the smallest representative).
#[derive(Clone, Debug, PartialEq)]
pub struct MergedView {
    /// The epoch of the consistent cut this view reduces (the cache
    /// tag `Service::merged_view` keys on).
    pub(crate) epoch: u64,
    /// Surviving clusters, rank order.
    pub clusters: Vec<MergedCluster>,
    /// Merge-cost telemetry of this reduction.
    pub stats: ReduceStats,
}

/// One shard-local cluster as captured under the consistent cut.
pub(crate) struct FragmentCut {
    pub(crate) r: ClusterRef,
    /// Global member ids, ascending.
    pub(crate) members: Vec<u64>,
    pub(crate) density: f64,
    /// Router signature of the evidence centroid.
    pub(crate) signature: u64,
    pub(crate) evidence: MergeEvidence,
}

/// One accepted multi-fragment group, addressed into the cut's union
/// data set.
pub(crate) struct UnionCut {
    /// Indices into the cut's fragment list.
    pub(crate) fragment_ids: Vec<usize>,
    /// Row ids of the group's members within the union data set,
    /// ascending.
    pub(crate) rows: Vec<u32>,
}

/// Everything the reducer needs, extracted under the consistent cut
/// so the expensive re-detection runs with no locks held.
pub(crate) struct ReduceCut {
    pub(crate) epoch: u64,
    pub(crate) fragments: Vec<FragmentCut>,
    /// Global ids of the union data set's rows, ascending.
    pub(crate) union_gids: Vec<u64>,
    /// The vectors of every grouped fragment's members, in
    /// `union_gids` order.
    pub(crate) union_data: Dataset,
    pub(crate) groups: Vec<UnionCut>,
    pub(crate) pairs_tested: usize,
    pub(crate) pairs_linked: usize,
}

/// Stage 2: signature-bucketed candidate pairs, affinity-tested and
/// grouped by union-find. Returns the multi-fragment groups (each
/// ascending, ordered by their smallest fragment), the number of
/// pairs tested and the number linked.
pub(crate) fn candidate_groups(
    fragments: &[FragmentCut],
    router: &ShardRouter,
    radius: u32,
    kernel: &LaplacianKernel,
    threshold: f64,
    cost: &Arc<CostModel>,
) -> (Vec<Vec<usize>>, usize, usize) {
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, f) in fragments.iter().enumerate() {
        buckets.entry(f.signature).or_default().push(i);
    }
    // Each unordered pair is generated exactly once (from its smaller
    // index); sorting makes the union-find link order canonical.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (i, f) in fragments.iter().enumerate() {
        for probe in router.probe_signatures(f.signature, radius) {
            if let Some(mates) = buckets.get(&probe) {
                for &j in mates {
                    if j > i && fragments[j].r.shard != f.r.shard {
                        pairs.push((i, j));
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    let mut parent: Vec<usize> = (0..fragments.len()).collect();
    let mut linked = 0usize;
    for &(i, j) in &pairs {
        if affinity_clears(&fragments[i].evidence, &fragments[j].evidence, kernel, threshold, cost)
        {
            linked += 1;
            link(&mut parent, i, j);
        }
    }
    // BTreeMap: group order must not depend on hash order (the sort
    // below keys on g[0], so ties between roots never reach the hash).
    let mut grouped: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..fragments.len() {
        let root = find(&mut parent, i);
        grouped.entry(root).or_default().push(i); // ascending: i ascends
    }
    let mut groups: Vec<Vec<usize>> = grouped.into_values().filter(|g| g.len() >= 2).collect();
    groups.sort_by_key(|g| g[0]);
    (groups, pairs.len(), linked)
}

/// The affinity test of stage 3: centroid-to-centroid kernel affinity
/// gates cheaply, then the mean cross-affinity of the two bounded
/// support samples must clear the same detection threshold — the
/// criterion a genuine straddler's fragments satisfy (their cross
/// affinities *are* within-cluster affinities) and two distinct
/// clusters at kernel range do not.
fn affinity_clears(
    a: &MergeEvidence,
    b: &MergeEvidence,
    kernel: &LaplacianKernel,
    threshold: f64,
    cost: &Arc<CostModel>,
) -> bool {
    cost.record_kernel_evals(1);
    if kernel.eval(&a.centroid, &b.centroid) < threshold {
        return false;
    }
    let pairs = a.sample.len() * b.sample.len();
    cost.record_kernel_evals(pairs as u64);
    // Flatten b's sample once, then evaluate each of a's vectors
    // against the whole block; accumulating the batch in q-order keeps
    // the sum bit-identical to the scalar nested loop.
    let dim = b.sample.first().map_or(0, Vec::len);
    let mut flat_b = Vec::with_capacity(b.sample.len() * dim);
    for q in &b.sample {
        flat_b.extend_from_slice(q);
    }
    let mut scratch = BlockEval::new();
    let mut vals = vec![0.0; b.sample.len()];
    let mut acc = 0.0;
    for p in &a.sample {
        scratch.eval_rows(kernel, dim, &flat_b, p, &mut vals);
        for &v in &vals {
            acc += v;
        }
    }
    pairs > 0 && acc / pairs as f64 >= threshold
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Union with the *smaller* index as root, so every group's
/// representative is its smallest fragment regardless of link order.
fn link(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi] = lo;
    }
}

/// One claim on a set of global item ids, competing under the
/// max-density rule.
struct Claim {
    members: Vec<u64>,
    density: f64,
    fragments: Vec<ClusterRef>,
    rep: ClusterRef,
}

/// Stages 3 + 4 on an extracted cut: re-detect each group's member
/// union, then resolve all claims — the raw fragments *and* the
/// dominant union re-detections — by maximum density with the
/// deterministic tie-break. Runs lock-free; `params.exec` parallelism
/// inside the re-detections never changes a byte of the output.
pub(crate) fn merge(cut: ReduceCut, params: &AlidParams, cost: &Arc<CostModel>) -> MergedView {
    let mut claims: Vec<Claim> = cut
        .fragments
        .iter()
        .map(|f| Claim {
            members: f.members.clone(),
            density: f.density,
            fragments: vec![f.r],
            rep: f.r,
        })
        .collect();
    for group in &cut.groups {
        for cluster in detect_on_subset(&cut.union_data, &group.rows, params, cost) {
            // The same dominance filter the shards' sweeps apply: a
            // union whose re-detection fails it leaves the raw
            // fragments standing.
            if cluster.density < params.density_threshold
                || cluster.members.len() < params.min_cluster_size
            {
                continue;
            }
            let members: Vec<u64> =
                cluster.members.iter().map(|&row| cut.union_gids[row as usize]).collect();
            let fragments: Vec<ClusterRef> = group
                .fragment_ids
                .iter()
                .map(|&f| &cut.fragments[f])
                .filter(|frag| frag.members.iter().any(|gid| members.binary_search(gid).is_ok()))
                .map(|frag| frag.r)
                .collect();
            let rep = fragments.iter().copied().min().expect("a union claim covers a fragment");
            claims.push(Claim { members, density: cluster.density, fragments, rep });
        }
    }
    // The paper's reduce: maximum density wins, the existing
    // deterministic tie-break (smallest representative) next; the
    // further keys only matter for pathological exact ties between
    // claims sharing a representative.
    claims.sort_by(|a, b| {
        b.density
            .total_cmp(&a.density)
            .then_with(|| a.rep.cmp(&b.rep))
            .then_with(|| b.members.len().cmp(&a.members.len()))
            .then_with(|| a.members.cmp(&b.members))
    });
    let mut taken: HashSet<u64> = HashSet::new();
    let mut clusters: Vec<MergedCluster> = Vec::new();
    let mut clusters_merged = 0usize;
    for claim in claims {
        if claim.members.iter().any(|gid| taken.contains(gid)) {
            continue; // a denser claim already owns part of it
        }
        taken.extend(claim.members.iter().copied());
        if claim.fragments.len() >= 2 {
            clusters_merged += 1;
        }
        clusters.push(MergedCluster {
            rep: claim.rep,
            fragments: claim.fragments,
            members: claim.members,
            density: claim.density,
        });
    }
    let stats = ReduceStats {
        fragments: cut.fragments.len(),
        pairs_tested: cut.pairs_tested,
        pairs_linked: cut.pairs_linked,
        groups_rerun: cut.groups.len(),
        union_items: cut.union_gids.len(),
        clusters_merged,
    };
    MergedView { epoch: cut.epoch, clusters, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::kernel::LaplacianKernel;

    fn frag(shard: u32, cluster: u32, members: Vec<u64>, density: f64, at: f64) -> FragmentCut {
        FragmentCut {
            r: ClusterRef { shard, cluster },
            members,
            density,
            signature: 0,
            evidence: MergeEvidence { centroid: vec![at], sample: vec![vec![at]] },
        }
    }

    fn cut(
        fragments: Vec<FragmentCut>,
        groups: Vec<UnionCut>,
        union: Vec<(u64, f64)>,
    ) -> ReduceCut {
        let union_gids: Vec<u64> = union.iter().map(|&(g, _)| g).collect();
        let union_data = Dataset::from_flat(1, union.iter().map(|&(_, x)| x).collect());
        ReduceCut {
            epoch: 0,
            fragments,
            union_gids,
            union_data,
            groups,
            pairs_tested: 0,
            pairs_linked: 0,
        }
    }

    fn params() -> AlidParams {
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = AlidParams::new(kernel);
        p.first_roi_radius = kernel.distance_at(0.5);
        p.density_threshold = 0.7;
        p.min_cluster_size = 3;
        p.lsh.seed = 5;
        p
    }

    #[test]
    fn candidate_groups_pair_within_the_radius_and_across_shards_only() {
        let router = ShardRouter::new(1, 8, 3);
        let kernel = LaplacianKernel::l2(1.0);
        let cost = CostModel::shared();
        let sig = |bits: u64| bits & 0xff;
        let mut a = frag(0, 0, vec![0], 0.9, 0.0);
        a.signature = sig(0b0000_0001);
        let mut b = frag(1, 0, vec![1], 0.9, 0.0);
        b.signature = sig(0b0000_0011); // hamming 1 from a
        let mut c = frag(1, 1, vec![2], 0.9, 0.0);
        c.signature = sig(0b1111_0000); // far from both
        let mut d = frag(0, 1, vec![3], 0.9, 0.0);
        d.signature = sig(0b0000_0001); // identical to a, but same shard
        let (groups, tested, linked) =
            candidate_groups(&[a, b, c, d], &router, 2, &kernel, 0.7, &cost);
        // Pairs: (a,b) and (b,d) qualify (cross-shard, within radius
        // 2); (a,d) is same-shard, c pairs with nothing.
        assert_eq!(tested, 2);
        assert_eq!(linked, 2, "coincident evidence clears any threshold < 1");
        assert_eq!(groups, vec![vec![0, 1, 3]], "links chain into one group");
    }

    #[test]
    fn affinity_gate_rejects_distant_fragments() {
        let router = ShardRouter::new(1, 8, 3);
        let kernel = LaplacianKernel::l2(1.0);
        let cost = CostModel::shared();
        let a = frag(0, 0, vec![0], 0.9, 0.0);
        let b = frag(1, 0, vec![1], 0.9, 50.0); // same (zeroed) signature, far away
        let (groups, tested, linked) = candidate_groups(&[a, b], &router, 0, &kernel, 0.7, &cost);
        assert_eq!(tested, 1);
        assert_eq!(linked, 0, "kernel affinity at distance 50 is ~0");
        assert!(groups.is_empty());
    }

    #[test]
    fn merge_resolves_claims_by_max_density_with_rep_tie_break() {
        // Two fragments of one tight 1-d cluster; the union re-detects
        // denser (an m-clique's density grows with m) and must
        // displace both.
        let a = frag(0, 0, vec![0, 2, 4], 0.75, 0.02);
        let b = frag(1, 0, vec![1, 3, 5], 0.75, 0.03);
        let rows: Vec<u32> = (0..6).collect();
        let union: Vec<(u64, f64)> = (0..6).map(|i| (i as u64, i as f64 * 0.01)).collect();
        let groups = vec![UnionCut { fragment_ids: vec![0, 1], rows }];
        let view = merge(cut(vec![a, b], groups, union), &params(), &CostModel::shared());
        assert_eq!(view.clusters.len(), 1, "{:?}", view.clusters);
        let joined = &view.clusters[0];
        assert!(joined.is_merged());
        assert_eq!(joined.members, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(joined.rep, ClusterRef { shard: 0, cluster: 0 });
        assert_eq!(
            joined.fragments,
            vec![ClusterRef { shard: 0, cluster: 0 }, ClusterRef { shard: 1, cluster: 0 }]
        );
        assert!(joined.density > 0.75, "the union out-densifies the fragments");
        assert_eq!(view.stats.clusters_merged, 1);
        assert_eq!(view.stats.groups_rerun, 1);
        assert_eq!(view.stats.union_items, 6);
    }

    #[test]
    fn failed_union_redetection_leaves_fragments_standing() {
        // A false-positive group: the union is two distant triples, so
        // re-detection reproduces the fragments (no denser union
        // exists) and the raw claims win on the tie-break.
        let a = frag(0, 0, vec![0, 1, 2], 0.85, 0.05);
        let b = frag(1, 0, vec![3, 4, 5], 0.84, 50.05);
        let rows: Vec<u32> = (0..6).collect();
        let union: Vec<(u64, f64)> =
            vec![(0, 0.0), (1, 0.05), (2, 0.1), (3, 50.0), (4, 50.05), (5, 50.1)];
        let groups = vec![UnionCut { fragment_ids: vec![0, 1], rows }];
        let view = merge(cut(vec![a, b], groups, union), &params(), &CostModel::shared());
        // Either the re-detected triples (same member sets) or the raw
        // fragments win — but never a 6-member join.
        assert_eq!(view.clusters.len(), 2, "{:?}", view.clusters);
        assert!(view.clusters.iter().all(|c| !c.is_merged()));
        let mut members: Vec<Vec<u64>> = view.clusters.iter().map(|c| c.members.clone()).collect();
        members.sort();
        assert_eq!(members, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn ungrouped_fragments_pass_through_ranked() {
        let a = frag(0, 0, vec![0, 1], 0.7, 0.0);
        let b = frag(1, 0, vec![2, 3], 0.9, 40.0);
        let view = merge(cut(vec![a, b], Vec::new(), Vec::new()), &params(), &CostModel::shared());
        assert_eq!(view.clusters.len(), 2);
        assert_eq!(view.clusters[0].rep, ClusterRef { shard: 1, cluster: 0 }, "densest first");
        assert_eq!(view.stats.clusters_merged, 0);
        assert_eq!(view.stats.fragments, 2);
    }
}
