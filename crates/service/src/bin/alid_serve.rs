//! `alid_serve` — the standalone front-end binary.
//!
//! Thin wrapper over [`alid_service::cli::serve_main`]; the root `alid`
//! binary's `serve` subcommand runs the identical code path, so either
//! entry point can be used interchangeably:
//!
//! ```text
//! alid_serve --dim 16 --scale 0.25 --shards 4 --addr 127.0.0.1:7099
//! curl -s localhost:7099/healthz
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match alid_service::cli::serve_main(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
