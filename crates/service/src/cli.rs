//! The `serve` entry point, shared by the standalone `alid_serve`
//! binary and the root CLI's `alid serve` subcommand so both spell the
//! same flags and behave identically.

use std::path::PathBuf;
use std::sync::Arc;

use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_core::AlidParams;
use alid_exec::ExecPolicy;

use crate::http::{self, HttpOptions};
use crate::service::{Service, ServiceConfig};
use crate::snapshot;

/// The serve usage text (also printed by the root CLI on `alid serve
/// --help`).
pub fn usage() -> &'static str {
    "usage: alid serve [options]\n\
     \n\
     serving:\n\
       --addr <host:port>      listen address (default 127.0.0.1:7099)\n\
       --shards <n>            hash-partitioned detection shards (default 4)\n\
       --batch <n>             per-shard sweep period (default 32)\n\
       --queue <n>             per-shard admission queue bound (default 1024)\n\
       --http-workers <n>      acceptor threads (default 4)\n\
       --workers <w>           exec-layer workers for drains and sweeps\n\
                               (default: auto = all cores; output is\n\
                               byte-identical for any count)\n\
       --snapshot <path>       restore from this snapshot if it exists; also\n\
                               the default target of POST /snapshot\n\
       --journal <dir>         durable append-only journal of applied\n\
                               mutations: replayed on top of the snapshot at\n\
                               start, appended to (group commit) while\n\
                               serving — recovery is bit-identical to an\n\
                               uninterrupted run\n\
       --compact-every <bytes> rotate journal segments at this size and fold\n\
                               them into the snapshot once they accumulate\n\
                               (default 8388608 = 8 MiB; 0 disables both,\n\
                               POST /snapshot still compacts explicitly)\n\
       --merge-sample <n>      support-sample bound of the merged view's\n\
                               affinity test (GET /clusters?view=merged;\n\
                               default 8)\n\
       --merge-radius <r>      signature Hamming radius for merged-view\n\
                               candidate pairs (default 2, max 4)\n\
       --trace-out <path>      enable phase tracing and append span events\n\
                               to this file as JSONL (drained once per\n\
                               second; telemetry only, outputs unchanged)\n\
     \n\
     detection (fresh start; a restored snapshot carries its own):\n\
       --dim <d>               feature dimensionality (required)\n\
       --scale <d>             typical intra-cluster distance; k calibrated so\n\
                               that distance maps to --target-affinity\n\
       --k <k>                 explicit Laplacian scaling factor\n\
       --target-affinity <a>   affinity at --scale (default 0.9)\n\
       --min-density <pi>      dominant-cluster threshold (default 0.75)\n\
       --min-size <m>          minimum cluster size (default 3)\n\
       --delta <n>             CIVS candidate cap (default 800)\n\
       --seed <s>              LSH seed (default 42)\n\
       --router-bits <b>       routing signature bits (default 16)\n\
       --router-seed <s>       routing hyperplane seed (default 0xa11d)\n\
       --help"
}

#[derive(Debug)]
struct ServeOptions {
    addr: String,
    shards: usize,
    batch: usize,
    queue: usize,
    http_workers: usize,
    workers: Option<usize>,
    snapshot: Option<PathBuf>,
    journal: Option<PathBuf>,
    compact_every: u64,
    dim: Option<usize>,
    scale: Option<f64>,
    k: Option<f64>,
    target_affinity: f64,
    min_density: f64,
    min_size: usize,
    delta: usize,
    seed: u64,
    router_bits: usize,
    router_seed: u64,
    merge_sample: usize,
    merge_radius: u32,
    trace_out: Option<PathBuf>,
}

fn parse(args: &[String]) -> Result<ServeOptions, String> {
    let mut o = ServeOptions {
        addr: "127.0.0.1:7099".into(),
        shards: 4,
        batch: 32,
        queue: 1024,
        http_workers: 4,
        workers: None,
        snapshot: None,
        journal: None,
        compact_every: 8 << 20,
        dim: None,
        scale: None,
        k: None,
        target_affinity: 0.9,
        min_density: 0.75,
        min_size: 3,
        delta: 800,
        seed: 42,
        router_bits: 16,
        router_seed: 0xa11d,
        merge_sample: 8,
        merge_radius: 2,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value\n\n{}", usage()))
        };
        let parse_usize = |name: &str, v: &str| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{name}: {e}\n\n{}", usage()))
        };
        let parse_f64 = |name: &str, v: &str| -> Result<f64, String> {
            v.parse().map_err(|e| format!("{name}: {e}\n\n{}", usage()))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--addr" => o.addr = take("--addr")?.clone(),
            "--shards" => o.shards = parse_usize("--shards", take("--shards")?)?,
            "--batch" => o.batch = parse_usize("--batch", take("--batch")?)?,
            "--queue" => o.queue = parse_usize("--queue", take("--queue")?)?,
            "--http-workers" => {
                o.http_workers = parse_usize("--http-workers", take("--http-workers")?)?
            }
            "--workers" => {
                let w = parse_usize("--workers", take("--workers")?)?;
                if w == 0 {
                    return Err("--workers must be at least 1".into());
                }
                o.workers = Some(w);
            }
            "--snapshot" => o.snapshot = Some(PathBuf::from(take("--snapshot")?)),
            "--journal" => o.journal = Some(PathBuf::from(take("--journal")?)),
            "--compact-every" => {
                let v = take("--compact-every")?;
                o.compact_every =
                    v.parse().map_err(|e| format!("--compact-every: {e}\n\n{}", usage()))?;
            }
            "--dim" => o.dim = Some(parse_usize("--dim", take("--dim")?)?),
            "--scale" => o.scale = Some(parse_f64("--scale", take("--scale")?)?),
            "--k" => o.k = Some(parse_f64("--k", take("--k")?)?),
            "--target-affinity" => {
                o.target_affinity = parse_f64("--target-affinity", take("--target-affinity")?)?
            }
            "--min-density" => o.min_density = parse_f64("--min-density", take("--min-density")?)?,
            "--min-size" => o.min_size = parse_usize("--min-size", take("--min-size")?)?,
            "--delta" => o.delta = parse_usize("--delta", take("--delta")?)?,
            "--seed" => o.seed = parse_seed("--seed", take("--seed")?)?,
            "--router-bits" => {
                o.router_bits = parse_usize("--router-bits", take("--router-bits")?)?
            }
            "--router-seed" => o.router_seed = parse_seed("--router-seed", take("--router-seed")?)?,
            "--merge-sample" => {
                o.merge_sample = parse_usize("--merge-sample", take("--merge-sample")?)?
            }
            "--merge-radius" => {
                let r = parse_usize("--merge-radius", take("--merge-radius")?)?;
                if r > 4 {
                    return Err(format!("--merge-radius must be at most 4, got {r}"));
                }
                o.merge_radius = r as u32;
            }
            "--trace-out" => o.trace_out = Some(PathBuf::from(take("--trace-out")?)),
            other => return Err(format!("unknown option {other}\n\n{}", usage())),
        }
    }
    if o.shards == 0 || o.batch == 0 || o.queue == 0 {
        return Err("--shards, --batch and --queue must be positive".into());
    }
    if o.dim == Some(0) {
        return Err("--dim must be positive".into());
    }
    if o.merge_sample == 0 {
        return Err("--merge-sample must be positive".into());
    }
    if !(1..=64).contains(&o.router_bits) {
        return Err(format!("--router-bits must be in 1..=64, got {}", o.router_bits));
    }
    Ok(o)
}

/// Seeds accept decimal or `0x`-prefixed hex — the usage text prints
/// the router default as `0xa11d`, and pasting a documented default
/// back must work.
fn parse_seed(name: &str, v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|e| format!("{name}: {e}"))
}

fn fresh_service(o: &ServeOptions, exec: ExecPolicy) -> Result<Service, String> {
    let dim = o.dim.ok_or_else(|| format!("--dim is required for a fresh start\n\n{}", usage()))?;
    let kernel = match (o.k, o.scale) {
        (Some(_), Some(_)) => return Err("--scale and --k are mutually exclusive".into()),
        (Some(k), None) => {
            if !(k > 0.0 && k.is_finite()) {
                return Err(format!("--k must be a positive finite factor, got {k}"));
            }
            LaplacianKernel::l2(k)
        }
        (None, Some(scale)) => {
            if !(scale > 0.0 && scale.is_finite()) {
                return Err(format!("--scale must be a positive finite distance, got {scale}"));
            }
            if !(o.target_affinity > 0.0 && o.target_affinity < 1.0) {
                return Err(format!(
                    "--target-affinity must lie strictly between 0 and 1, got {}",
                    o.target_affinity
                ));
            }
            LaplacianKernel::calibrate(scale, o.target_affinity, LpNorm::L2)
        }
        (None, None) => return Err(format!("one of --scale or --k is required\n\n{}", usage())),
    };
    let mut params = AlidParams::new(kernel).with_delta(o.delta.max(1));
    params.first_roi_radius = kernel.distance_at(0.5);
    params.density_threshold = o.min_density;
    params.min_cluster_size = o.min_size;
    params.lsh.seed = o.seed;
    params.exec = exec;
    let mut cfg = ServiceConfig::new(dim, o.shards, params)
        .with_batch(o.batch)
        .with_queue_capacity(o.queue)
        .with_exec(exec);
    cfg = cfg.with_merge_sample(o.merge_sample).with_merge_radius(o.merge_radius);
    cfg.router_bits = o.router_bits;
    cfg.router_seed = o.router_seed;
    Ok(Service::new(cfg))
}

/// Parses `args` (everything after `serve`), builds or restores the
/// service, and serves until the process dies. Returns an error
/// message (possibly the usage text) instead of printing it, so both
/// binaries control their own exit codes.
pub fn serve_main(args: &[String]) -> Result<(), String> {
    let o = parse(args)?;
    let exec = ExecPolicy::auto_or(o.workers);
    let (mut service, snap_meta) = match &o.snapshot {
        Some(path) if path.exists() => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
            let (svc, meta) = snapshot::restore_with_meta(&bytes, exec)
                .map_err(|e| format!("restoring {}: {e}", path.display()))?;
            eprintln!(
                "restored {} items / {} shards from {}",
                svc.len(),
                svc.shard_count(),
                path.display()
            );
            (svc, meta)
        }
        _ => (fresh_service(&o, exec)?, snapshot::SnapshotMeta::default()),
    };
    // Like `exec`, the merge knobs are runtime choices a snapshot
    // does not carry — apply the flags on both paths so
    // `--merge-sample`/`--merge-radius` are honoured after a restore
    // too.
    service.set_merge_knobs(o.merge_sample, o.merge_radius);
    if let Some(dir) = &o.journal {
        // Replay any frames past the snapshot's cut through the
        // deterministic insert path, then attach the live journal so
        // every mutation from here on is appended. Replay runs before
        // the attach — the service must not re-journal its own replay.
        let cfg =
            crate::journal::JournalConfig { dir: dir.clone(), compact_every: o.compact_every };
        let journal = crate::journal::recover_and_open(cfg, &service, snap_meta.journal_pos)
            .map_err(|e| format!("recovering journal {}: {e}", dir.display()))?;
        eprintln!(
            "journal {} replayed to position {} ({} items live)",
            dir.display(),
            journal.appended(),
            service.len()
        );
        service.set_journal(journal);
    }
    // Tracing is observation only: spans record phase timings, and the
    // parity suite proves outputs are byte-identical with it on or off.
    if let Some(path) = &o.trace_out {
        alid_obs::trace::enable(alid_obs::trace::DEFAULT_CAPACITY);
        alid_obs::trace::start_writer(path.clone(), std::time::Duration::from_secs(1))
            .map_err(|e| format!("opening --trace-out {}: {e}", path.display()))?;
        eprintln!("tracing spans to {}", path.display());
    }
    let cfg = service.config();
    eprintln!(
        "alid-service: {} shards, dim {}, sweep period {}, queue bound {}, {} exec workers",
        cfg.shards,
        cfg.dim,
        cfg.batch,
        cfg.queue_capacity,
        cfg.exec.worker_count()
    );
    let server = http::start(
        Arc::new(service),
        o.addr.as_str(),
        HttpOptions { http_workers: o.http_workers.max(1), snapshot_path: o.snapshot.clone() },
    )
    .map_err(|e| format!("binding {}: {e}", o.addr))?;
    // Single readiness line on stdout: scripts wait for it (or poll
    // /healthz) before sending traffic.
    println!("listening on http://{}", server.addr());
    server.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn unknown_flags_report_usage() {
        let err = parse(&args(&["--bogus"])).unwrap_err();
        assert!(err.contains("unknown option --bogus"));
        assert!(err.contains("usage: alid serve"), "must include the usage text");
    }

    #[test]
    fn missing_values_report_usage() {
        let err = parse(&args(&["--shards"])).unwrap_err();
        assert!(err.contains("--shards needs a value"));
        assert!(err.contains("usage: alid serve"));
    }

    #[test]
    fn fresh_service_requires_dim_and_kernel() {
        let o = parse(&args(&[])).unwrap();
        let err = fresh_service(&o, ExecPolicy::sequential()).unwrap_err();
        assert!(err.contains("--dim is required"));
        let o = parse(&args(&["--dim", "4"])).unwrap();
        let err = fresh_service(&o, ExecPolicy::sequential()).unwrap_err();
        assert!(err.contains("one of --scale or --k"));
    }

    #[test]
    fn fresh_service_builds_with_scale() {
        let o = parse(&args(&["--dim", "3", "--scale", "0.5", "--shards", "2"])).unwrap();
        let svc = fresh_service(&o, ExecPolicy::sequential()).unwrap();
        assert_eq!(svc.shard_count(), 2);
        assert_eq!(svc.config().dim, 3);
    }

    #[test]
    fn conflicting_kernel_flags_rejected() {
        let o = parse(&args(&["--dim", "3", "--scale", "0.5", "--k", "2.0"])).unwrap();
        assert!(fresh_service(&o, ExecPolicy::sequential())
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn zero_structural_values_rejected() {
        assert!(parse(&args(&["--shards", "0"])).is_err());
        assert!(parse(&args(&["--batch", "0"])).is_err());
    }

    #[test]
    fn invalid_dim_and_router_bits_error_instead_of_panicking() {
        assert!(parse(&args(&["--dim", "0"])).unwrap_err().contains("--dim"));
        assert!(parse(&args(&["--router-bits", "0"])).unwrap_err().contains("--router-bits"));
        assert!(parse(&args(&["--router-bits", "65"])).unwrap_err().contains("--router-bits"));
    }

    #[test]
    fn merge_knobs_parse_and_validate() {
        let o = parse(&args(&["--merge-sample", "16", "--merge-radius", "1"])).unwrap();
        assert_eq!(o.merge_sample, 16);
        assert_eq!(o.merge_radius, 1);
        let o = parse(&args(&[
            "--dim",
            "2",
            "--scale",
            "0.5",
            "--merge-sample",
            "3",
            "--merge-radius",
            "0",
        ]))
        .unwrap();
        let svc = fresh_service(&o, ExecPolicy::sequential()).unwrap();
        assert_eq!(svc.config().merge_sample, 3);
        assert_eq!(svc.config().merge_radius, 0);
        assert!(parse(&args(&["--merge-sample", "0"])).unwrap_err().contains("--merge-sample"));
        assert!(parse(&args(&["--merge-radius", "5"])).unwrap_err().contains("--merge-radius"));
        // Oversized values must error, not truncate into range.
        assert!(parse(&args(&["--merge-radius", "4294967296"]))
            .unwrap_err()
            .contains("--merge-radius"));
    }

    #[test]
    fn journal_flags_parse() {
        let o = parse(&args(&["--journal", "/tmp/j", "--compact-every", "1024"])).unwrap();
        assert_eq!(o.journal.as_deref(), Some(std::path::Path::new("/tmp/j")));
        assert_eq!(o.compact_every, 1024);
        let o = parse(&args(&[])).unwrap();
        assert!(o.journal.is_none());
        assert_eq!(o.compact_every, 8 << 20, "default is 8 MiB");
        assert!(parse(&args(&["--journal"])).unwrap_err().contains("--journal needs a value"));
        assert!(parse(&args(&["--compact-every", "lots"]))
            .unwrap_err()
            .contains("--compact-every"));
    }

    #[test]
    fn trace_out_parses_and_requires_a_value() {
        let o = parse(&args(&["--trace-out", "/tmp/trace.jsonl"])).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some(std::path::Path::new("/tmp/trace.jsonl")));
        assert!(parse(&args(&[])).unwrap().trace_out.is_none());
        assert!(parse(&args(&["--trace-out"])).unwrap_err().contains("--trace-out needs a value"));
    }

    #[test]
    fn seeds_accept_the_documented_hex_form() {
        // The usage text prints the router default as 0xa11d; pasting
        // it back must parse.
        let o = parse(&args(&["--router-seed", "0xa11d", "--seed", "0xFF"])).unwrap();
        assert_eq!(o.router_seed, 0xa11d);
        assert_eq!(o.seed, 255);
        let o = parse(&args(&["--router-seed", "41245"])).unwrap();
        assert_eq!(o.router_seed, 0xa11d);
        assert!(parse(&args(&["--seed", "0xZZ"])).is_err());
    }
}
