//! Versioned binary snapshot/restore for the whole [`Service`].
//!
//! Layout: an 8-byte magic (`ALIDSNAP`), a little-endian `u32` format
//! version, then one [`serde::bin`]-encoded value holding the full
//! state — config, detection parameters, placements, and per shard
//! the dataset, assignments, clusters, incremental density sums,
//! pending buffer, unapplied ingest queue and sweep phase — plus the
//! *logical journal position* the snapshot reflects, so journal
//! replay ([`crate::journal`]) knows where to cut. Every
//! float travels as raw IEEE-754 bits, so restore is *exact*: a
//! restored service continues bit-for-bit identically to one that was
//! never persisted (`tests/service.rs` proves it end to end).
//!
//! What is **not** stored, and why:
//!
//! * the LSH indexes — pure functions of `(params.lsh, data)`,
//!   rebuilt on restore through the same insert path the live
//!   instance used (see `StreamingAlid::from_state`);
//! * the routing hyperplanes — redrawn from `(dim, router_bits,
//!   router_seed)`;
//! * execution policies — a runtime choice; any worker count yields
//!   the same bytes, so the restorer picks its own;
//! * peel telemetry and per-shard busy counts — diagnostics that
//!   never feed back into detection;
//! * the merged-view cache and the merge knobs (`merge_sample`,
//!   `merge_radius`) — the reduction is recomputed on demand from
//!   restored shard state, and because its evidence is canonical in
//!   the member sets, a restored service's merged view is
//!   bit-identical to the uninterrupted one.

use std::fmt;

use alid_affinity::clustering::DetectedCluster;
use alid_affinity::cost::CostModel;
use alid_affinity::kernel::{LaplacianKernel, LpNorm};
use alid_affinity::vector::Dataset;
use alid_core::streaming::StreamingAlid;
use alid_core::{AlidParams, SpeculationParams};
use alid_exec::ExecPolicy;
use alid_lsh::LshParams;
use serde::bin::{self, BinError};
use serde::{Json, Serialize};

use crate::service::{Placement, Service, ServiceConfig, Shard};

/// Leading bytes of every snapshot.
pub const MAGIC: &[u8; 8] = b"ALIDSNAP";
/// Current format version. Version 2 added `journal_pos` (the logical
/// journal frame count folded into this snapshot, so recovery knows
/// which journal frames are already reflected) and the packed-f64
/// array encoding in the `serde::bin` codec.
pub const VERSION: u32 = 2;

/// Why a snapshot failed to restore.
#[derive(Debug)]
pub enum SnapshotError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The version word names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The binary payload is corrupt.
    Decode(BinError),
    /// The payload decoded but its shape is wrong.
    Schema(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an ALID snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot version {v} unsupported (this build reads {VERSION})")
            }
            SnapshotError::Decode(e) => write!(f, "snapshot payload corrupt: {e}"),
            SnapshotError::Schema(msg) => write!(f, "snapshot schema violation: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<BinError> for SnapshotError {
    fn from(e: BinError) -> Self {
        SnapshotError::Decode(e)
    }
}

fn schema_err(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Schema(msg.into())
}

// --- encode ------------------------------------------------------------

fn params_json(p: &AlidParams) -> Json {
    Json::object([
        ("kernel_k", p.kernel.k.to_json()),
        ("kernel_p", p.kernel.norm.p().to_json()),
        ("delta", p.delta.to_json()),
        ("max_alid_iters", p.max_alid_iters.to_json()),
        ("max_lid_iters", p.max_lid_iters.to_json()),
        ("tol", p.tol.to_json()),
        ("first_roi_radius", p.first_roi_radius.to_json()),
        ("density_threshold", p.density_threshold.to_json()),
        ("min_cluster_size", p.min_cluster_size.to_json()),
        ("lsh_tables", p.lsh.tables.to_json()),
        ("lsh_projections", p.lsh.projections.to_json()),
        ("lsh_r", p.lsh.r.to_json()),
        ("lsh_seed", p.lsh.seed.to_json()),
        ("spec_adaptive", p.speculation.adaptive.to_json()),
        ("spec_initial_width", p.speculation.initial_width.to_json()),
    ])
}

fn floats_json(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
}

fn shard_json(shard: &Shard) -> Json {
    let stream = &shard.stream;
    let assigned = Json::Arr(
        stream
            .assignments()
            .iter()
            .map(|a| match a {
                Some(c) => Json::UInt(*c as u64),
                None => Json::Null,
            })
            .collect(),
    );
    let clusters = Json::Arr(
        stream
            .clusters()
            .iter()
            .map(|c| {
                Json::object([
                    ("members", c.members.to_json()),
                    ("weights", floats_json(&c.weights)),
                    ("density", Json::Num(c.density)),
                ])
            })
            .collect(),
    );
    let queue = Json::Arr(shard.queue.iter().map(|v| floats_json(v)).collect());
    Json::object([
        ("flat", floats_json(stream.data().as_flat())),
        ("assigned", assigned),
        ("clusters", clusters),
        ("pair_sums", floats_json(stream.pair_sums())),
        ("pending", stream.pending().to_json()),
        ("since_sweep", stream.since_sweep().to_json()),
        ("queue", queue),
    ])
}

/// Serialises the full service state into the versioned binary format.
///
/// Holds every shard lock *and* the placement lock simultaneously (a
/// consistent cut — see `Service::lock_all`): a concurrent ingest is
/// either entirely before the snapshot (queued vector and placement
/// both present) or entirely after it. Anything less lets an
/// acknowledged id restore to a different vector: the orphan-queue
/// race where a vector is captured in a shard queue while its
/// placement entry is not.
pub fn snapshot_bytes(service: &Service) -> Vec<u8> {
    snapshot_bytes_with_meta(service).0
}

/// [`snapshot_bytes`] plus the logical journal position folded into the
/// snapshot — the number of journal frames whose effects the snapshot
/// body reflects. Frames below that position are redundant with the
/// snapshot; [`crate::journal::Journal::truncate_below`] may drop the
/// segments that hold only such frames once the snapshot is durably on
/// disk.
///
/// The position is read inside the same all-locks window as the state
/// itself (every journaled mutation enqueues its frame while still
/// holding its commit locks, so with all locks held the appended count
/// is exactly the number of frames whose effects are visible), and it
/// is *logical* — a pure function of the mutation history, so two
/// services with identical histories stamp identical snapshots
/// regardless of how their journals were segmented. Without a journal
/// attached the position is 0.
pub fn snapshot_bytes_with_meta(service: &Service) -> (Vec<u8>, u64) {
    let cfg = service.config();
    let (shard_guards, placement_guard) = service.lock_all();
    let journal_pos = service.journal().map(|j| j.rotate_for_cut()).unwrap_or(0);
    let placements: Vec<u64> =
        placement_guard.iter().map(|p| ((p.shard as u64) << 32) | p.local as u64).collect();
    let shard_states: Vec<Json> = shard_guards.iter().map(|g| shard_json(g)).collect();
    drop(placement_guard);
    drop(shard_guards);
    let body = Json::object([
        ("schema", "alid-service-snapshot".to_json()),
        ("version", VERSION.to_json()),
        ("dim", cfg.dim.to_json()),
        ("shards", cfg.shards.to_json()),
        ("batch", cfg.batch.to_json()),
        ("queue_capacity", cfg.queue_capacity.to_json()),
        ("router_bits", cfg.router_bits.to_json()),
        ("router_seed", cfg.router_seed.to_json()),
        ("journal_pos", journal_pos.to_json()),
        ("params", params_json(&cfg.params)),
        ("placements", placements.to_json()),
        ("shard_states", Json::Arr(shard_states)),
    ]);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    bin::encode_into(&body, &mut out);
    (out, journal_pos)
}

// --- decode ------------------------------------------------------------

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    obj.get(key).ok_or_else(|| schema_err(format!("missing field {key:?}")))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, SnapshotError> {
    field(obj, key)?
        .as_u64()
        .map(|u| u as usize)
        .ok_or_else(|| schema_err(format!("field {key:?} is not an unsigned integer")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, SnapshotError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| schema_err(format!("field {key:?} is not an unsigned integer")))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, SnapshotError> {
    field(obj, key)?.as_f64().ok_or_else(|| schema_err(format!("field {key:?} is not a number")))
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, SnapshotError> {
    field(obj, key)?.as_bool().ok_or_else(|| schema_err(format!("field {key:?} is not a boolean")))
}

fn arr_field<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], SnapshotError> {
    field(obj, key)?.as_arr().ok_or_else(|| schema_err(format!("field {key:?} is not an array")))
}

fn floats(items: &[Json], what: &str) -> Result<Vec<f64>, SnapshotError> {
    items
        .iter()
        .map(|j| j.as_f64().ok_or_else(|| schema_err(format!("{what}: non-numeric element"))))
        .collect()
}

fn uints(items: &[Json], what: &str) -> Result<Vec<u32>, SnapshotError> {
    items
        .iter()
        .map(|j| {
            j.as_u64()
                .filter(|&u| u <= u32::MAX as u64)
                .map(|u| u as u32)
                .ok_or_else(|| schema_err(format!("{what}: element is not a u32")))
        })
        .collect()
}

fn params_from_json(obj: &Json) -> Result<AlidParams, SnapshotError> {
    let p = f64_field(obj, "kernel_p")?;
    if p < 1.0 {
        return Err(schema_err(format!("kernel_p must be >= 1, got {p}")));
    }
    let k = f64_field(obj, "kernel_k")?;
    if !(k.is_finite() && k > 0.0) {
        return Err(schema_err(format!("kernel_k must be positive, got {k}")));
    }
    let kernel = LaplacianKernel::new(k, LpNorm::new(p));
    let mut params = AlidParams::new(kernel);
    // Restored faithfully, not clamped: these are plain pub fields
    // with no construction invariant, and "restore then continue is
    // bit-for-bit the uninterrupted run" forbids silently changing
    // whatever (possibly degenerate) values the live instance ran.
    params.delta = usize_field(obj, "delta")?;
    params.max_alid_iters = usize_field(obj, "max_alid_iters")?;
    params.max_lid_iters = usize_field(obj, "max_lid_iters")?;
    params.tol = f64_field(obj, "tol")?;
    params.first_roi_radius = f64_field(obj, "first_roi_radius")?;
    params.density_threshold = f64_field(obj, "density_threshold")?;
    params.min_cluster_size = usize_field(obj, "min_cluster_size")?;
    let tables = usize_field(obj, "lsh_tables")?;
    let projections = usize_field(obj, "lsh_projections")?;
    let r = f64_field(obj, "lsh_r")?;
    if tables == 0 || projections == 0 || !(r.is_finite() && r > 0.0) {
        return Err(schema_err("invalid LSH parameters"));
    }
    params.lsh = LshParams::new(tables, projections, r, u64_field(obj, "lsh_seed")?);
    params.speculation = SpeculationParams {
        adaptive: bool_field(obj, "spec_adaptive")?,
        initial_width: usize_field(obj, "spec_initial_width")?,
    };
    Ok(params)
}

fn shard_from_json(
    obj: &Json,
    dim: usize,
    batch: usize,
    params: AlidParams,
    cost: &std::sync::Arc<CostModel>,
) -> Result<Shard, SnapshotError> {
    let flat = floats(arr_field(obj, "flat")?, "flat")?;
    if flat.len() % dim != 0 {
        return Err(schema_err("shard dataset length is not a multiple of dim"));
    }
    let data = Dataset::from_flat(dim, flat);
    let n = data.len();
    let assigned_json = arr_field(obj, "assigned")?;
    if assigned_json.len() != n {
        return Err(schema_err("assignment vector length mismatch"));
    }
    let mut assigned = Vec::with_capacity(n);
    for j in assigned_json {
        assigned.push(if j.is_null() {
            None
        } else {
            Some(j.as_u64().ok_or_else(|| schema_err("assigned: element is not a u64"))? as usize)
        });
    }
    let mut clusters = Vec::new();
    for c in arr_field(obj, "clusters")? {
        let members = uints(arr_field(c, "members")?, "members")?;
        let weights = floats(arr_field(c, "weights")?, "weights")?;
        if weights.len() != members.len() {
            return Err(schema_err("cluster members/weights length mismatch"));
        }
        let density = f64_field(c, "density")?;
        clusters.push(DetectedCluster { members, weights, density });
    }
    let pair_sums = floats(arr_field(obj, "pair_sums")?, "pair_sums")?;
    if pair_sums.len() != clusters.len() {
        return Err(schema_err("clusters/pair_sums length mismatch"));
    }
    let pending = uints(arr_field(obj, "pending")?, "pending")?;
    let since_sweep = usize_field(obj, "since_sweep")?;
    // Bounds checks beyond this point live in `from_state`, which
    // panics on corrupt indices; pre-validate so a bad snapshot is an
    // Err, not an abort.
    for a in assigned.iter().flatten() {
        if *a >= clusters.len() {
            return Err(schema_err("assignment references an unknown cluster"));
        }
    }
    for c in &clusters {
        if c.members.iter().any(|&m| m as usize >= n) {
            return Err(schema_err("cluster member out of bounds"));
        }
    }
    if pending.iter().any(|&p| p as usize >= n) {
        return Err(schema_err("pending item out of bounds"));
    }
    let mut queue = std::collections::VecDeque::new();
    for q in arr_field(obj, "queue")? {
        let v = floats(
            q.as_arr().ok_or_else(|| schema_err("queue entry is not an array"))?,
            "queue entry",
        )?;
        if v.len() != dim {
            return Err(schema_err("queued vector dimensionality mismatch"));
        }
        queue.push_back(v);
    }
    let stream = StreamingAlid::from_state(
        params,
        batch,
        std::sync::Arc::clone(cost),
        data,
        clusters,
        pair_sums,
        assigned,
        pending,
        since_sweep,
    );
    // Busy counts are process-lifetime telemetry, not state: a
    // restored service starts refusing from zero.
    Ok(Shard { stream, queue })
}

/// Snapshot-level facts a restorer needs beyond the [`Service`] itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Logical journal position folded into the snapshot: journal
    /// frames below this position are already reflected in the
    /// restored state and must be skipped during replay
    /// ([`crate::journal::recover_and_open`] does so). 0 when the
    /// snapshot was taken without a journal.
    pub journal_pos: u64,
}

/// Restores a service from [`snapshot_bytes`] output. `exec` becomes
/// both the service-level fan-out policy and the shards' detection
/// policy — a runtime choice, since any worker count produces the
/// same bytes.
pub fn restore(bytes: &[u8], exec: ExecPolicy) -> Result<Service, SnapshotError> {
    restore_with_meta(bytes, exec).map(|(svc, _)| svc)
}

/// [`restore`] plus the [`SnapshotMeta`] needed to resume a journal
/// (the replay cut point).
pub fn restore_with_meta(
    bytes: &[u8],
    exec: ExecPolicy,
) -> Result<(Service, SnapshotMeta), SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut ver = [0u8; 4];
    ver.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 4]);
    let version = u32::from_le_bytes(ver);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let body = bin::decode(&bytes[MAGIC.len() + 4..])?;
    let dim = usize_field(&body, "dim")?;
    let shards = usize_field(&body, "shards")?;
    if dim == 0 || shards == 0 {
        return Err(schema_err("dim and shards must be positive"));
    }
    let batch = usize_field(&body, "batch")?;
    if batch == 0 {
        return Err(schema_err("batch must be positive"));
    }
    let queue_capacity = usize_field(&body, "queue_capacity")?;
    let router_bits = usize_field(&body, "router_bits")?;
    if !(1..=64).contains(&router_bits) {
        return Err(schema_err("router_bits must be in 1..=64"));
    }
    let router_seed = u64_field(&body, "router_seed")?;
    let mut params = params_from_json(field(&body, "params")?)?;
    params.exec = exec;
    // The merge knobs are query-time reducer configuration, not
    // behavioural state (like `exec`, they never change what a shard
    // computes): restores take the serving defaults and the caller
    // re-applies any overrides via `Service::set_merge_knobs` (the
    // serve CLI does exactly that).
    let defaults = ServiceConfig::new(dim, shards, params);
    let cfg = ServiceConfig {
        dim,
        shards,
        batch,
        queue_capacity,
        router_bits,
        router_seed,
        params,
        exec,
        merge_sample: defaults.merge_sample,
        merge_radius: defaults.merge_radius,
    };
    let shard_states = arr_field(&body, "shard_states")?;
    if shard_states.len() != shards {
        return Err(schema_err("shard_states count does not match shards"));
    }
    let cost = CostModel::shared();
    let mut shard_vec = Vec::with_capacity(shards);
    for s in shard_states {
        shard_vec.push(shard_from_json(s, dim, batch, params, &cost)?);
    }
    let mut placements = Vec::new();
    for packed in arr_field(&body, "placements")? {
        let u = packed.as_u64().ok_or_else(|| schema_err("placement is not a u64"))?;
        let p = Placement { shard: (u >> 32) as u32, local: u as u32 };
        let shard = shard_vec
            .get(p.shard as usize)
            .ok_or_else(|| schema_err("placement references an unknown shard"))?;
        if (p.local as usize) >= shard.stream.len() + shard.queue.len() {
            return Err(schema_err("placement local index out of bounds"));
        }
        placements.push(p);
    }
    // A consistent snapshot registers every shard-held item exactly
    // once (snapshot_bytes guarantees it by holding all locks); a
    // mismatch means a corrupt or hand-edited file.
    let held: usize = shard_vec.iter().map(|s| s.stream.len() + s.queue.len()).sum();
    if placements.len() != held {
        return Err(schema_err(format!(
            "{} placements for {held} shard-held items",
            placements.len()
        )));
    }
    // Absent (pre-journal writer, still version 2) reads as 0: replay
    // from the journal's first frame.
    let journal_pos = body.get("journal_pos").and_then(Json::as_u64).unwrap_or(0);
    let meta = SnapshotMeta { journal_pos };
    Ok((Service::from_parts(cfg, shard_vec, placements, cost), meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_core::streaming::StreamingAlid;

    fn params() -> AlidParams {
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = AlidParams::new(kernel);
        p.first_roi_radius = kernel.distance_at(0.5);
        p.density_threshold = 0.7;
        p.min_cluster_size = 3;
        p.lsh.seed = 5;
        p
    }

    fn populated_service() -> Service {
        let cfg = ServiceConfig::new(2, 3, params()).with_batch(8).with_queue_capacity(64);
        let svc = Service::new(cfg);
        for i in 0..50 {
            let v = match i % 5 {
                0 | 1 => [(i % 7) as f64 * 0.03, 0.0],
                2 | 3 => [40.0 + (i % 7) as f64 * 0.03, 40.0],
                _ => [i as f64 * 17.0, -(i as f64) * 23.0],
            };
            svc.ingest(&v);
        }
        svc.drain();
        // Leave some items queued so the snapshot covers that path too.
        for i in 0..5 {
            svc.ingest(&[i as f64 * 0.03, 0.0]);
        }
        svc
    }

    fn assert_identical(a: &Service, b: &Service) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.depths(), b.depths());
        for s in 0..a.shard_count() {
            let (sa, sb) = (a.shard_state(s), b.shard_state(s));
            assert_eq!(sa.queue, sb.queue, "shard {s} queue");
            assert_eq!(sa.stream.assignments(), sb.stream.assignments(), "shard {s}");
            assert_eq!(sa.stream.pending(), sb.stream.pending(), "shard {s}");
            assert_eq!(sa.stream.since_sweep(), sb.stream.since_sweep(), "shard {s}");
            assert_eq!(sa.stream.data(), sb.stream.data(), "shard {s} data");
            let pa: Vec<u64> = sa.stream.pair_sums().iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u64> = sb.stream.pair_sums().iter().map(|x| x.to_bits()).collect();
            assert_eq!(pa, pb, "shard {s} pair sums");
            assert_eq!(sa.stream.clusters().len(), sb.stream.clusters().len());
            for (ca, cb) in sa.stream.clusters().iter().zip(sb.stream.clusters()) {
                assert_eq!(ca.members, cb.members);
                assert_eq!(ca.density.to_bits(), cb.density.to_bits());
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let svc = populated_service();
        let bytes = snapshot_bytes(&svc);
        let restored = restore(&bytes, ExecPolicy::sequential()).expect("restore");
        assert_identical(&svc, &restored);
        // And the snapshot of the restore is byte-identical.
        assert_eq!(bytes, snapshot_bytes(&restored));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let svc = populated_service();
        let mut bytes = snapshot_bytes(&svc);
        assert!(matches!(
            restore(b"NOTASNAP", ExecPolicy::sequential()),
            Err(SnapshotError::BadMagic)
        ));
        bytes[8] = 99; // version word
        assert!(matches!(
            restore(&bytes, ExecPolicy::sequential()),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corrupt_payload_is_an_error_not_a_panic() {
        let svc = populated_service();
        let bytes = snapshot_bytes(&svc);
        for cut in [13, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                restore(&bytes[..cut], ExecPolicy::sequential()),
                Err(SnapshotError::Decode(_))
            ));
        }
    }

    #[test]
    fn streaming_state_fields_survive() {
        // A shard mid-batch (since_sweep != 0) restores on schedule.
        let svc = populated_service();
        let restored = restore(&snapshot_bytes(&svc), ExecPolicy::sequential()).unwrap();
        let any_mid_batch =
            (0..svc.shard_count()).any(|s| svc.shard_state(s).stream.since_sweep() != 0);
        assert!(any_mid_batch, "fixture should leave a shard mid-batch");
        let _ = restored;
    }

    /// Regression for the orphan-queue race: snapshots taken while
    /// another thread ingests must always be a consistent cut — every
    /// shard-held vector has its placement entry and vice versa, so
    /// every concurrent snapshot restores (the old
    /// one-lock-at-a-time reader could capture a queued vector whose
    /// placement was still being registered, silently re-aliasing an
    /// acknowledged id after restore).
    #[test]
    fn concurrent_snapshots_are_consistent_cuts() {
        let cfg = ServiceConfig::new(2, 3, params()).with_batch(16).with_queue_capacity(10_000);
        let svc = std::sync::Arc::new(Service::new(cfg));
        let writer = {
            let svc = std::sync::Arc::clone(&svc);
            // alid-lint: allow(no-raw-threads) -- the race under test *is* a raw writer thread against the snapshot path
            std::thread::spawn(move || {
                for i in 0..400 {
                    let v = [40.0 + (i % 7) as f64 * 0.03, (i % 11) as f64 * 0.03];
                    let _ = svc.ingest(&v);
                    if i % 64 == 63 {
                        svc.drain();
                    }
                }
            })
        };
        let mut taken = 0;
        while !writer.is_finished() {
            let bytes = snapshot_bytes(&svc);
            let restored =
                restore(&bytes, ExecPolicy::sequential()).expect("mid-ingest snapshot restores");
            let held: usize = (0..restored.shard_count())
                .map(|s| {
                    let g = restored.shard_state(s);
                    g.stream.len() + g.queue.len()
                })
                .sum();
            assert_eq!(restored.len(), held, "placements out of sync with shard state");
            taken += 1;
        }
        writer.join().expect("writer thread");
        assert!(taken > 0, "at least one snapshot raced the writer");
    }

    #[test]
    fn journal_pos_defaults_to_zero_without_a_journal() {
        let svc = populated_service();
        let (bytes, pos) = snapshot_bytes_with_meta(&svc);
        assert_eq!(pos, 0);
        let (_, meta) = restore_with_meta(&bytes, ExecPolicy::sequential()).expect("restore");
        assert_eq!(meta, SnapshotMeta { journal_pos: 0 });
    }

    #[test]
    fn version_constant_is_stamped() {
        let svc = populated_service();
        let bytes = snapshot_bytes(&svc);
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), VERSION);
    }

    #[test]
    fn from_state_is_reachable_standalone() {
        // The persistence surface works without a Service wrapper too
        // (other tools can snapshot a bare stream).
        let mut s = StreamingAlid::new(1, params(), 8, CostModel::shared());
        for i in 0..12 {
            s.push(&[i as f64 * 0.01]);
        }
        let rebuilt = StreamingAlid::from_state(
            *s.params(),
            s.batch(),
            CostModel::shared(),
            s.data().clone(),
            s.clusters().to_vec(),
            s.pair_sums().to_vec(),
            s.assignments().to_vec(),
            s.pending().to_vec(),
            s.since_sweep(),
        );
        assert_eq!(rebuilt.assignments(), s.assignments());
    }
}
