//! The sharded service core: routing, bounded admission, parallel
//! drain, and cross-shard queries (raw fragment ranking and the
//! merged view's full PALID reduce — see [`crate::reduce`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use alid_affinity::cost::CostModel;
use alid_affinity::vector::Dataset;
use alid_core::streaming::{StreamUpdate, StreamingAlid};
use alid_core::AlidParams;
use alid_exec::ExecPolicy;
use alid_lsh::ShardRouter;
use serde::{Json, Serialize};

use crate::reduce::{self, FragmentCut, MergedCluster, MergedView, ReduceCut, UnionCut};

/// Static configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Feature dimensionality of every ingested vector.
    pub dim: usize,
    /// Number of hash-partitioned [`StreamingAlid`] shards.
    pub shards: usize,
    /// Per-shard sweep period (arrivals between detection passes).
    pub batch: usize,
    /// Per-shard bound on admitted-but-unapplied items; admissions
    /// beyond it are refused with [`Admission::Busy`].
    pub queue_capacity: usize,
    /// Sign bits of the routing signature.
    pub router_bits: usize,
    /// Seed of the routing hyperplanes. Independent of `params.lsh.seed`
    /// so re-seeding detection never silently re-partitions the stream.
    pub router_seed: u64,
    /// Detection parameters handed to every shard.
    pub params: AlidParams,
    /// Execution policy for the service's own fan-out phases (the
    /// cross-shard drain). Shard-internal sweeps follow `params.exec`.
    pub exec: ExecPolicy,
    /// Per-fragment support-sample bound for the merged view's
    /// affinity test (see [`Service::merged_view`]); testing one
    /// candidate pair costs `O(merge_sample² · dim)`.
    pub merge_sample: usize,
    /// Signature Hamming radius for the merged view's candidate-pair
    /// generation: fragments whose centroid signatures differ in more
    /// than this many routing hyperplanes are never considered for
    /// joining. Radius 2 covers clusters straddling up to two
    /// hyperplanes at `Σ_{r<=2} C(router_bits, r)` probes per
    /// fragment.
    pub merge_radius: u32,
}

impl ServiceConfig {
    /// A config with serving-friendly defaults: sweep period 32,
    /// queue capacity 1024, 16 routing bits.
    ///
    /// # Panics
    /// Panics unless `dim >= 1` and `shards >= 1`.
    pub fn new(dim: usize, shards: usize, params: AlidParams) -> Self {
        assert!(dim >= 1, "dimensionality must be positive");
        assert!(shards >= 1, "need at least one shard");
        Self {
            dim,
            shards,
            batch: 32,
            queue_capacity: 1024,
            router_bits: 16,
            router_seed: 0xa11d,
            params,
            exec: ExecPolicy::sequential(),
            merge_sample: 8,
            merge_radius: 2,
        }
    }

    /// Replaces the sweep period.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "sweep period must be positive");
        self.batch = batch;
        self
    }

    /// Replaces the per-shard queue capacity.
    ///
    /// # Panics
    /// Panics if `queue_capacity == 0`.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        assert!(queue_capacity >= 1, "queue capacity must be positive");
        self.queue_capacity = queue_capacity;
        self
    }

    /// Replaces the service-level execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Replaces the merged view's support-sample bound.
    ///
    /// # Panics
    /// Panics if `merge_sample == 0`.
    pub fn with_merge_sample(mut self, merge_sample: usize) -> Self {
        assert!(merge_sample >= 1, "merge sample bound must be positive");
        self.merge_sample = merge_sample;
        self
    }

    /// Replaces the merged view's candidate-signature radius.
    ///
    /// # Panics
    /// Panics if `merge_radius > 4` (the probe count explodes
    /// combinatorially past that).
    pub fn with_merge_radius(mut self, merge_radius: u32) -> Self {
        assert!(merge_radius <= 4, "merge radius above 4 explodes combinatorially");
        self.merge_radius = merge_radius;
        self
    }
}

/// Where an item lives: which shard, and its arrival position within
/// that shard's substream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Owning shard.
    pub shard: u32,
    /// Arrival index within the shard's substream.
    pub local: u32,
}

/// A cluster's global address: `(shard, index within the shard)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ClusterRef {
    /// Owning shard.
    pub shard: u32,
    /// Cluster index within the shard (stable: shards only append).
    pub cluster: u32,
}

/// The admission decision for one ingested item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: the item received a global id and a queue slot on its
    /// shard (`depth` = queue length after the enqueue).
    Enqueued {
        /// Global item id (dense, in admission order).
        id: u64,
        /// Shard the router chose.
        shard: u32,
        /// Shard queue depth right after this enqueue.
        depth: usize,
    },
    /// Refused: the shard's queue is full. The item holds no id; the
    /// caller decides whether to retry, shed, or block.
    Busy {
        /// Shard the router chose.
        shard: u32,
        /// The (full) queue's depth.
        depth: usize,
    },
}

impl Serialize for Admission {
    fn to_json(&self) -> Json {
        match *self {
            Admission::Enqueued { id, shard, depth } => Json::object([
                ("status", "enqueued".to_json()),
                ("id", id.to_json()),
                ("shard", shard.to_json()),
                ("depth", depth.to_json()),
            ]),
            Admission::Busy { shard, depth } => Json::object([
                ("status", "busy".to_json()),
                ("shard", shard.to_json()),
                ("depth", depth.to_json()),
            ]),
        }
    }
}

/// What one [`Service::drain`] call applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Queued items applied to their shards.
    pub applied: usize,
    /// Items that attached to an existing cluster on the ingest path.
    pub attached: usize,
    /// Items left buffered as unexplained.
    pub buffered: usize,
    /// New dominant clusters promoted by triggered sweeps.
    pub promoted: usize,
}

impl Serialize for DrainReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("applied", self.applied.to_json()),
            ("attached", self.attached.to_json()),
            ("buffered", self.buffered.to_json()),
            ("promoted", self.promoted.to_json()),
        ])
    }
}

/// Per-shard load metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardDepth {
    /// Admitted-but-unapplied items in the ingest queue.
    pub queued: usize,
    /// Applied items the shard has not yet explained (its sweep
    /// buffer).
    pub pending: usize,
    /// Items the shard has applied.
    pub items: usize,
    /// Dominant clusters the shard currently holds.
    pub clusters: usize,
    /// Admissions this shard refused with [`Admission::Busy`] since
    /// the process started (telemetry, not state: snapshots do not
    /// persist it and a restore starts the count afresh).
    pub busy: u64,
}

impl Serialize for ShardDepth {
    fn to_json(&self) -> Json {
        Json::object([
            ("queued", self.queued.to_json()),
            ("pending", self.pending.to_json()),
            ("items", self.items.to_json()),
            ("clusters", self.clusters.to_json()),
            ("busy", self.busy.to_json()),
        ])
    }
}

/// A cluster's cross-shard summary row.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSummary {
    /// Global address.
    pub cluster: ClusterRef,
    /// Member count.
    pub size: usize,
    /// Graph density `π(x)`.
    pub density: f64,
}

impl Serialize for ClusterSummary {
    fn to_json(&self) -> Json {
        Json::object([
            ("shard", self.cluster.shard.to_json()),
            ("cluster", self.cluster.cluster.to_json()),
            ("size", self.size.to_json()),
            ("density", self.density.to_json()),
        ])
    }
}

/// One shard: the streaming detector plus its bounded ingest queue.
/// (Busy-refusal telemetry lives in [`ServiceMetrics`], not here —
/// the shard holds state, the registry holds observations.)
pub(crate) struct Shard {
    pub(crate) stream: StreamingAlid,
    pub(crate) queue: VecDeque<Vec<f64>>,
}

/// Per-service observability: a private `alid-obs` registry plus the
/// write-side handles the service's own paths bump.
///
/// Private rather than process-global on purpose: tests run many
/// services in one process, and a shared registry would bleed one
/// service's busy counts into another's `/healthz`. Everything that
/// *is* process-global (exec pool, autotuners, peeler, tracer) lives
/// in `alid_obs::global()`; the HTTP front end renders both at
/// `GET /metrics` and registers its own series into this registry via
/// [`Service::metrics_registry`].
pub(crate) struct ServiceMetrics {
    registry: alid_obs::Registry,
    /// Admissions refused with [`Admission::Busy`], one counter per
    /// shard (telemetry, not state: snapshots do not persist it and a
    /// restore starts the count afresh).
    busy: Vec<Arc<alid_obs::Counter>>,
    admitted: Arc<alid_obs::Counter>,
    drains: Arc<alid_obs::Counter>,
    drain_applied: Arc<alid_obs::Counter>,
    drain_seconds: Arc<alid_obs::Histogram>,
    sweeps: Arc<alid_obs::Counter>,
    reduce_hits: Arc<alid_obs::Counter>,
    reduce_misses: Arc<alid_obs::Counter>,
    reduce_seconds: Arc<alid_obs::Histogram>,
    reduce_pairs_tested: Arc<alid_obs::Counter>,
    reduce_pairs_linked: Arc<alid_obs::Counter>,
}

impl ServiceMetrics {
    fn new(shards: usize) -> Self {
        let r = alid_obs::Registry::new();
        let busy = (0..shards)
            .map(|s| {
                r.counter(
                    "alid_service_busy_total",
                    "Admissions refused with Busy since the process started",
                    &[("shard", &s.to_string())],
                )
            })
            .collect();
        ServiceMetrics {
            busy,
            admitted: r.counter(
                "alid_service_admitted_total",
                "Items admitted with an id and a queue slot",
                &[],
            ),
            drains: r.counter("alid_service_drains_total", "Drain calls", &[]),
            drain_applied: r.counter(
                "alid_service_drain_applied_total",
                "Queued items applied to their shards by drains",
                &[],
            ),
            drain_seconds: r.histogram(
                "alid_service_drain_seconds",
                "Wall time of one drain call across all shards",
                &[],
            ),
            sweeps: r.counter("alid_service_sweeps_total", "Forced detection sweeps", &[]),
            reduce_hits: r.counter(
                "alid_service_reduce_cache_hits_total",
                "Merged-view queries served from the epoch-keyed cache",
                &[],
            ),
            reduce_misses: r.counter(
                "alid_service_reduce_cache_misses_total",
                "Merged-view queries that re-ran the PALID reduce",
                &[],
            ),
            reduce_seconds: r.histogram(
                "alid_service_reduce_seconds",
                "Wall time of one full cross-shard reduce (cut + merge)",
                &[],
            ),
            reduce_pairs_tested: r.counter(
                "alid_service_reduce_pairs_tested_total",
                "Candidate fragment pairs affinity-tested by reduces",
                &[],
            ),
            reduce_pairs_linked: r.counter(
                "alid_service_reduce_pairs_linked_total",
                "Candidate fragment pairs that cleared the join threshold",
                &[],
            ),
            registry: r,
        }
    }
}

/// The sharded online detection service. Thread-safe: admission,
/// drain and queries may be called concurrently from any number of
/// threads (the HTTP front end does exactly that).
pub struct Service {
    cfg: ServiceConfig,
    router: ShardRouter,
    shards: Vec<Mutex<Shard>>,
    /// Global id -> placement, in admission order. Lock order: a shard
    /// lock may be held while taking this lock (admission); never the
    /// reverse.
    placements: Mutex<Vec<Placement>>,
    cost: Arc<CostModel>,
    /// Bumped after every state mutation that can change the merged
    /// view (a drain that applied something, any sweep, a merge-knob
    /// change); the merged-view cache is keyed on it. Plain admission
    /// never bumps — queued items are invisible to the reduction
    /// until applied. Mutations bump *after* they complete, so a
    /// cached view can be tagged older than the state it reflects (a
    /// harmless recompute) but never newer (a stale hit).
    epoch: AtomicU64,
    /// The cached merged view with the epoch it was computed at.
    merged: Mutex<Option<(u64, Arc<MergedView>)>>,
    /// Write-side telemetry handles plus the per-service registry.
    obs: ServiceMetrics,
    /// Durable mutation journal, attached by [`Self::set_journal`]
    /// after recovery. Appends happen *after* each mutation commits
    /// and while its lock is still held, so the journal order is a
    /// legal commit order; `None` means persistence is snapshot-only.
    journal: Option<crate::journal::Journal>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("dim", &self.cfg.dim)
            .field("shards", &self.cfg.shards)
            .field("items", &self.len())
            .finish_non_exhaustive()
    }
}

impl Service {
    /// An empty service.
    pub fn new(cfg: ServiceConfig) -> Self {
        let router = ShardRouter::new(cfg.dim, cfg.router_bits, cfg.router_seed);
        let cost = CostModel::shared();
        let shards: Vec<_> = (0..cfg.shards)
            .map(|_| {
                Mutex::new(Shard {
                    stream: StreamingAlid::new(cfg.dim, cfg.params, cfg.batch, Arc::clone(&cost)),
                    queue: VecDeque::new(),
                })
            })
            .collect();
        let obs = ServiceMetrics::new(shards.len());
        Self {
            cfg,
            router,
            shards,
            placements: Mutex::new(Vec::new()),
            cost,
            epoch: AtomicU64::new(0),
            merged: Mutex::new(None),
            obs,
            journal: None,
        }
    }

    /// Rebuilds a service from restored parts (the snapshot codec's
    /// constructor).
    pub(crate) fn from_parts(
        cfg: ServiceConfig,
        shards: Vec<Shard>,
        placements: Vec<Placement>,
        cost: Arc<CostModel>,
    ) -> Self {
        let router = ShardRouter::new(cfg.dim, cfg.router_bits, cfg.router_seed);
        let obs = ServiceMetrics::new(shards.len());
        Self {
            cfg,
            router,
            shards: shards.into_iter().map(Mutex::new).collect(),
            placements: Mutex::new(placements),
            cost,
            epoch: AtomicU64::new(0),
            merged: Mutex::new(None),
            obs,
            journal: None,
        }
    }

    /// The per-service metrics registry — the exposition surface
    /// `GET /metrics` renders and the HTTP front end registers its own
    /// series into. Write handles stay private to the paths that bump
    /// them.
    pub fn metrics_registry(&self) -> &alid_obs::Registry {
        &self.obs.registry
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Re-applies the query-time merge knobs (see
    /// [`ServiceConfig::merge_sample`] / [`ServiceConfig::merge_radius`]).
    /// Snapshots deliberately do not persist these — they configure
    /// the reducer, not shard state — so `alid serve` calls this
    /// after a restore to honour the operator's flags. Invalidates
    /// the merged-view cache: the next query reduces under the new
    /// knobs.
    ///
    /// # Panics
    /// Panics if `merge_sample == 0` or `merge_radius > 4`.
    pub fn set_merge_knobs(&mut self, merge_sample: usize, merge_radius: u32) {
        assert!(merge_sample >= 1, "merge sample bound must be positive");
        assert!(merge_radius <= 4, "merge radius above 4 explodes combinatorially");
        self.cfg.merge_sample = merge_sample;
        self.cfg.merge_radius = merge_radius;
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Attaches the durability journal. Call *after*
    /// [`crate::journal::recover_and_open`] has replayed history into
    /// this service — replayed mutations must not re-journal
    /// themselves — and before the service starts taking traffic.
    pub fn set_journal(&mut self, journal: crate::journal::Journal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any (the HTTP front end barriers and
    /// compacts through this; the snapshot codec captures its cut).
    pub fn journal(&self) -> Option<&crate::journal::Journal> {
        self.journal.as_ref()
    }

    /// The shared cost model all shards account into.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Total admitted items (applied + queued).
    pub fn len(&self) -> usize {
        self.placements.lock().expect("placements").len()
    }

    /// Whether nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, s: usize) -> MutexGuard<'_, Shard> {
        self.shards[s].lock().expect("shard mutex")
    }

    /// Test-only peek at one shard's raw state (production readers go
    /// through the query API or `lock_all`).
    #[cfg(test)]
    pub(crate) fn shard_state(&self, s: usize) -> MutexGuard<'_, Shard> {
        self.shard(s)
    }

    /// Locks the whole service — every shard (in index order) and the
    /// placement registry — and returns the guards, giving the
    /// snapshot codec a *consistent cut*: no item can be captured in
    /// a shard queue without its placement entry (or vice versa).
    /// The order is compatible with `ingest` (one shard, then
    /// placements), so no lock cycle exists: an ingest holding shard
    /// `s` blocks this method at `s` *before* it reaches the
    /// placement lock.
    pub(crate) fn lock_all(&self) -> (Vec<MutexGuard<'_, Shard>>, MutexGuard<'_, Vec<Placement>>) {
        let shards = self.lock_shards();
        let placements = self.placements.lock().expect("placements");
        (shards, placements)
    }

    /// Locks every shard in index order — the shard-only consistent
    /// cut cross-shard readers (`summaries`, `top_k`) take so a
    /// concurrent drain can never yield a view that counts an item
    /// mid-migration on two shards (or on none). A prefix of the
    /// `lock_all` order, so it composes with admission's
    /// one-shard-then-placements discipline without a cycle.
    pub(crate) fn lock_shards(&self) -> Vec<MutexGuard<'_, Shard>> {
        (0..self.shards.len()).map(|s| self.shard(s)).collect()
    }

    /// The shard the router assigns to `v` (pure; exposed so clients
    /// can pre-partition their own batches).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn route(&self, v: &[f64]) -> usize {
        self.router.route(v, self.shards.len())
    }

    /// Admits one item: routes it, enqueues it on its shard (bounded),
    /// and assigns the global id. The item is *not* applied until the
    /// next [`Self::drain`] — admission is cheap and never triggers a
    /// sweep.
    ///
    /// # Panics
    /// Panics if `v.len() != config().dim`.
    pub fn ingest(&self, v: &[f64]) -> Admission {
        assert_eq!(v.len(), self.cfg.dim, "ingested vector dimensionality mismatch");
        let s = self.route(v);
        let mut shard = self.shard(s);
        if shard.queue.len() >= self.cfg.queue_capacity {
            self.obs.busy[s].inc();
            return Admission::Busy { shard: s as u32, depth: shard.queue.len() };
        }
        self.obs.admitted.inc();
        let local = (shard.stream.len() + shard.queue.len()) as u32;
        shard.queue.push_back(v.to_vec());
        let depth = shard.queue.len();
        // Shard lock still held: the global order must agree with the
        // shard-local order for items of the same shard.
        let mut placements = self.placements.lock().expect("placements");
        let id = placements.len() as u64;
        placements.push(Placement { shard: s as u32, local });
        if let Some(journal) = &self.journal {
            // Both commit locks still held: the journal's channel
            // order agrees with the admission order.
            journal.append_admit(id, s as u32, v);
        }
        // No epoch bump: admission only touches the queue and the
        // placement registry, both invisible to the merged view until
        // a drain applies the item (the reduce's reverse map skips
        // locals past the applied prefix) — enqueue-heavy clients
        // keep their merged-view cache hot.
        Admission::Enqueued { id, shard: s as u32, depth }
    }

    /// Admits a batch in order. Stops at nothing: every item gets its
    /// own admission verdict (a full shard refuses, others continue).
    pub fn ingest_batch<'a, I>(&self, items: I) -> Vec<Admission>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        items.into_iter().map(|v| self.ingest(v)).collect()
    }

    /// Applies every queued item to its shard, fanning out across
    /// shards on the configured [`ServiceConfig::exec`] policy (this
    /// is where server threads reuse the shared exec pool). Per-shard
    /// application is strictly FIFO, so the outcome is byte-identical
    /// for any worker count.
    pub fn drain(&self) -> DrainReport {
        self.obs.drains.inc();
        let _drain_timer = self.obs.drain_seconds.start_timer();
        let reports = self.cfg.exec.map_indexed(self.shards.len(), |s| {
            let mut shard = self.shard(s);
            let mut report = DrainReport::default();
            while let Some(v) = shard.queue.pop_front() {
                report.applied += 1;
                // alid-lint: allow(panic-under-lock) -- queued vectors were dim-checked at ingest admission; push's dim assert cannot fire here
                match shard.stream.push(&v) {
                    StreamUpdate::Attached(_) => report.attached += 1,
                    StreamUpdate::Buffered => report.buffered += 1,
                    StreamUpdate::SweptNewClusters(k) => report.promoted += k,
                }
            }
            if report.applied > 0 {
                if let Some(journal) = &self.journal {
                    // Shard lock still held: the frame records the
                    // shard-local item count this drain reached, the
                    // anchor replay validates against.
                    journal.append_apply(s as u32, shard.stream.len() as u64);
                }
            }
            report
        });
        let mut total = DrainReport::default();
        for r in reports {
            total.applied += r.applied;
            total.attached += r.attached;
            total.buffered += r.buffered;
            total.promoted += r.promoted;
        }
        self.obs.drain_applied.add(total.applied as u64);
        if total.applied > 0 {
            // After the mutations: a merged view cut mid-drain tags
            // itself with the pre-bump epoch and is invalidated here.
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        total
    }

    /// Forces a detection sweep on every shard (tail flush — the
    /// stream analogue of "run detection on what's left").
    pub fn sweep(&self) -> usize {
        self.obs.sweeps.inc();
        let promoted = self
            .cfg
            .exec
            .map_indexed(self.shards.len(), |s| {
                let mut shard = self.shard(s);
                let freed_before = shard.stream.aux_freed_total();
                // alid-lint: allow(panic-under-lock) -- sweep's asserts are internal invariants over ingest-validated data; a failure means corrupted shard state, where fail-fast poisoning beats serving wrong clusters
                let promoted = shard.stream.sweep();
                if let Some(journal) = &self.journal {
                    // Shard lock still held; `freed` records this
                    // sweep's tombstone-compaction savings (replay
                    // re-derives the compaction deterministically).
                    journal.append_sweep(
                        s as u32,
                        shard.stream.len() as u64,
                        shard.stream.aux_freed_total() - freed_before,
                    );
                }
                promoted
            })
            .into_iter()
            .sum();
        // A sweep can attach pending items even when it promotes
        // nothing, so the merged-view cache is always invalidated.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        promoted
    }

    /// Journal-replay form of one shard's slice of [`Self::drain`]:
    /// applies queued items in FIFO order until the shard holds
    /// exactly `upto` items, erroring if the journal and the shard
    /// disagree (already past `upto`, or the queue runs dry first).
    /// Single-threaded on purpose — recovery replays frames in
    /// journal order, one at a time.
    pub(crate) fn replay_apply(&self, s: usize, upto: u64) -> Result<usize, String> {
        let mut shard = self.shard(s);
        if shard.stream.len() as u64 > upto {
            return Err(format!(
                "shard {s} already holds {} items, drain frame says {upto}",
                shard.stream.len()
            ));
        }
        let mut applied = 0usize;
        while (shard.stream.len() as u64) < upto {
            let Some(v) = shard.queue.pop_front() else {
                return Err(format!(
                    "shard {s} queue ran dry at {} items replaying a drain to {upto}",
                    shard.stream.len()
                ));
            };
            applied += 1;
            // alid-lint: allow(panic-under-lock) -- replayed vectors were dim-checked when their admit frame decoded; push's dim assert cannot fire here
            let _ = shard.stream.push(&v);
        }
        drop(shard);
        if applied > 0 {
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        Ok(applied)
    }

    /// Journal-replay form of one shard's slice of [`Self::sweep`],
    /// validated against the item count the live sweep ran at — a
    /// mismatch means the journal belongs to a different history.
    pub(crate) fn replay_sweep(&self, s: usize, upto: u64) -> Result<usize, String> {
        let mut shard = self.shard(s);
        if shard.stream.len() as u64 != upto {
            return Err(format!(
                "shard {s} holds {} items, sweep frame ran at {upto}",
                shard.stream.len()
            ));
        }
        // alid-lint: allow(panic-under-lock) -- same internal-invariant asserts as the live sweep path above
        let promoted = shard.stream.sweep();
        drop(shard);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(promoted)
    }

    /// The current cluster assignment of admitted item `id`: `None`
    /// for unknown ids; `Some(None)` while the item is queued or
    /// unexplained; `Some(Some(cluster))` once a cluster claims it.
    pub fn assignment(&self, id: u64) -> Option<Option<ClusterRef>> {
        let placement = {
            let placements = self.placements.lock().expect("placements");
            *placements.get(id as usize)?
        };
        let shard = self.shard(placement.shard as usize);
        let assigned = shard
            .stream
            .assignments()
            .get(placement.local as usize)
            .copied()
            .flatten()
            .map(|c| ClusterRef { shard: placement.shard, cluster: c as u32 });
        Some(assigned)
    }

    /// Read-only attachment probe: the densest cluster on `v`'s shard
    /// that `v` would join under the infective-attachment rule
    /// (`π(s_new, x_c) >= π(x_c)`), without mutating anything. `None`
    /// when no cluster would accept the vector. Delegates to
    /// [`StreamingAlid::best_infective`] — the same evaluation the
    /// ingest path runs — so probe answers can never drift from what
    /// an actual ingest of `v` would decide.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn probe(&self, v: &[f64]) -> Option<(ClusterRef, f64)> {
        assert_eq!(v.len(), self.cfg.dim, "probed vector dimensionality mismatch");
        let s = self.route(v);
        let shard = self.shard(s);
        let all = 0..shard.stream.clusters().len();
        // alid-lint: allow(panic-under-lock) -- probe dim-asserts its input before taking the shard lock; the evaluation asserts cannot fire on validated data
        shard
            .stream
            .best_infective(v, all)
            .map(|(c, density, _)| (ClusterRef { shard: s as u32, cluster: c as u32 }, density))
    }

    /// Every shard's current load metrics.
    pub fn depths(&self) -> Vec<ShardDepth> {
        (0..self.shards.len())
            .map(|s| {
                let shard = self.shard(s);
                ShardDepth {
                    queued: shard.queue.len(),
                    pending: shard.stream.pending().len(),
                    items: shard.stream.len(),
                    clusters: shard.stream.clusters().len(),
                    // alid-lint: allow(no-metric-branching) -- /healthz telemetry read-out; the value feeds load reporting, never clustering outputs
                    busy: self.obs.busy[s].metric_value(),
                }
            })
            .collect()
    }

    /// A retry-backoff hint (milliseconds) for a [`Admission::Busy`]
    /// verdict observed at queue `depth`: one millisecond per queued
    /// item — the drain applies queued items at sub-millisecond rates,
    /// so by then the queue has almost certainly made room — clamped
    /// to `[25, 10_000]` so tiny queues don't spin and huge ones don't
    /// park clients for minutes. The HTTP front end surfaces it as a
    /// `Retry-After` header.
    pub fn retry_after_hint_ms(depth: usize) -> u64 {
        (depth as u64).clamp(25, 10_000)
    }

    /// Summaries of every cluster across all shards, in `(shard,
    /// cluster)` order — one consistent cut: all shard locks are held
    /// together (same discipline as the snapshot codec), so a
    /// concurrent drain can never produce a view that observes an
    /// item on two shards or on none.
    pub fn summaries(&self) -> Vec<ClusterSummary> {
        let shards = self.lock_shards();
        let mut out = Vec::new();
        for (s, shard) in shards.iter().enumerate() {
            for (c, cluster) in shard.stream.clusters().iter().enumerate() {
                out.push(ClusterSummary {
                    cluster: ClusterRef { shard: s as u32, cluster: c as u32 },
                    size: cluster.members.len(),
                    density: cluster.density,
                });
            }
        }
        out
    }

    /// The `k` densest clusters service-wide — the PALID reduction
    /// rule (Fig. 5's "maximum density wins") applied across shards:
    /// candidates are ranked by density, ties broken by `(shard,
    /// cluster)` so the merge is deterministic. Taken over the same
    /// consistent cut as [`Self::summaries`], via a bounded selection
    /// (a size-`k` heap), so `k ≪ clusters` queries cost
    /// `O(clusters · log k)` instead of a service-wide clone and full
    /// sort.
    pub fn top_k(&self, k: usize) -> Vec<ClusterSummary> {
        if k == 0 {
            return Vec::new();
        }
        let shards = self.lock_shards();
        // Min-heap of the best k seen: the root is the *worst* of the
        // current best, evicted whenever a better candidate arrives.
        let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::new();
        for (s, shard) in shards.iter().enumerate() {
            for (c, cluster) in shard.stream.clusters().iter().enumerate() {
                let entry = Ranked(ClusterSummary {
                    cluster: ClusterRef { shard: s as u32, cluster: c as u32 },
                    size: cluster.members.len(),
                    density: cluster.density,
                });
                if heap.len() < k {
                    heap.push(Reverse(entry));
                } else if heap.peek().is_some_and(|Reverse(worst)| entry > *worst) {
                    heap.pop();
                    heap.push(Reverse(entry));
                }
            }
        }
        drop(shards);
        let mut out: Vec<ClusterSummary> =
            heap.into_iter().map(|Reverse(Ranked(summary))| summary).collect();
        out.sort_by(|a, b| b.density.total_cmp(&a.density).then_with(|| a.cluster.cmp(&b.cluster)));
        out
    }

    /// The fully reduced cross-shard view — the paper's PALID reduce
    /// phase (Fig. 5) done properly on partitioned data: instead of
    /// merely *ranking* shard-local detections, fragments of a
    /// dominant cluster that straddles a routing hyperplane are
    /// *joined* by re-running the detection dynamics on their member
    /// union.
    ///
    /// The pipeline (see [`crate::reduce`] for the stages): take a
    /// consistent cut of every shard's clusters with their merge
    /// evidence; generate candidate fragment pairs from router
    /// signatures of the centroids (fragments of one straddling
    /// cluster have near-identical signatures by construction — no
    /// all-pairs scan); accept pairs whose centroid/support-sample
    /// kernel affinity clears the detection threshold; re-detect on
    /// the member union of each accepted group via
    /// [`alid_core::detect_on_subset`]; and resolve all surviving
    /// claims by the paper's maximum-density rule with the
    /// deterministic `(shard, cluster)` tie-break.
    ///
    /// The result is cached and invalidated whenever applied state
    /// changes (a drain that applied items, any sweep), so repeated
    /// queries between mutations never re-pay the reduction; plain
    /// admission leaves the cache hot, since queued items cannot
    /// appear in any cluster until drained.
    /// Determinism: the view is a pure function of the cut shard
    /// states, so it is bit-identical across reruns and worker
    /// counts; the re-detected clusters are additionally a pure
    /// function of the member *union*, which is what makes the merged
    /// view agree with a single-shard run on straddling fixtures (see
    /// `tests/service.rs`).
    pub fn merged_view(&self) -> Arc<MergedView> {
        let hint = self.epoch.load(Ordering::SeqCst);
        if let Some((tag, view)) = self.merged.lock().expect("merged cache").as_ref() {
            if *tag == hint {
                self.obs.reduce_hits.inc();
                return Arc::clone(view);
            }
        }
        self.obs.reduce_misses.inc();
        let _reduce_timer = self.obs.reduce_seconds.start_timer();
        let cut = self.reduce_cut();
        self.obs.reduce_pairs_tested.add(cut.pairs_tested as u64);
        self.obs.reduce_pairs_linked.add(cut.pairs_linked as u64);
        let view = Arc::new(reduce::merge(cut, &self.cfg.params, &self.cost));
        *self.merged.lock().expect("merged cache") = Some((view.epoch, Arc::clone(&view)));
        view
    }

    /// The `k` densest clusters of the [`Self::merged_view`] — the
    /// `top_k` analogue after fragment joining (the `top_k_merged`
    /// library API behind `GET /clusters?view=merged`).
    pub fn top_k_merged(&self, k: usize) -> Vec<MergedCluster> {
        self.merged_view().clusters.iter().take(k).cloned().collect()
    }

    /// Extracts everything the reducer needs under one consistent cut
    /// (all shard locks + the placement lock, the `lock_all`
    /// discipline), leaving the expensive union re-detection to run
    /// *after* the locks drop: fragment summaries with merge
    /// evidence, signature-generated candidate groups, and the member
    /// union (ids + vectors) of every accepted group.
    fn reduce_cut(&self) -> ReduceCut {
        let (shards, placements) = self.lock_all();
        // Read under the full cut: a mutation serialized before this
        // cut either already bumped (tag exact) or bumps after (tag
        // older than the state — the cache then recomputes once, it
        // never serves a stale view).
        let epoch = self.epoch.load(Ordering::SeqCst);
        // Reverse placement map: (shard, local) -> global id, for the
        // applied prefix of every shard (cluster members are always
        // applied; queued items have local indices past `stream.len()`).
        let mut rev: Vec<Vec<u64>> =
            shards.iter().map(|g| vec![u64::MAX; g.stream.len()]).collect();
        for (gid, p) in placements.iter().enumerate() {
            if let Some(slot) = rev[p.shard as usize].get_mut(p.local as usize) {
                *slot = gid as u64;
            }
        }
        let mut fragments = Vec::new();
        for (s, guard) in shards.iter().enumerate() {
            for (c, cluster) in guard.stream.clusters().iter().enumerate() {
                // alid-lint: allow(panic-under-lock) -- merge_sample is asserted positive at construction and in set_merge_knobs; the sample-cap assert cannot fire
                let evidence = guard.stream.merge_evidence(c, self.cfg.merge_sample);
                let members: Vec<u64> =
                    cluster.members.iter().map(|&m| rev[s][m as usize]).collect();
                fragments.push(FragmentCut {
                    r: ClusterRef { shard: s as u32, cluster: c as u32 },
                    members,
                    density: cluster.density,
                    // alid-lint: allow(panic-under-lock) -- the centroid dim comes from the shard dataset, which matches the router dim fixed at construction
                    signature: self.router.signature(&evidence.centroid),
                    evidence,
                });
            }
        }
        // A radius wider than the signature itself would trip the
        // probe enumerator's assertion — while this cut holds every
        // lock, poisoning the whole service — so narrow routers clamp
        // it (probing the full Hamming ball of a 1-bit signature is
        // already exhaustive).
        let radius = self.cfg.merge_radius.min(self.cfg.router_bits as u32);
        let (groups, pairs_tested, pairs_linked) = reduce::candidate_groups(
            &fragments,
            &self.router,
            radius,
            &self.cfg.params.kernel,
            self.cfg.params.density_threshold,
            &self.cost,
        );
        // The union data set: every grouped fragment's members, in
        // ascending global-id order — canonical in the member sets
        // alone, so any partitioning producing the same unions
        // re-detects identically.
        let mut union_gids: Vec<u64> = groups
            .iter()
            .flat_map(|g| g.iter().flat_map(|&f| fragments[f].members.iter().copied()))
            .collect();
        union_gids.sort_unstable();
        union_gids.dedup();
        // alid-lint: allow(panic-under-lock) -- cfg.dim is asserted positive at construction; the capacity assert cannot fire
        let mut union_data = Dataset::with_capacity(self.cfg.dim, union_gids.len());
        for &gid in &union_gids {
            let p = placements[gid as usize];
            // alid-lint: allow(panic-under-lock) -- rows are copied between same-dim datasets; the dim-equality assert cannot fire
            union_data.push(shards[p.shard as usize].stream.data().get(p.local as usize));
        }
        // The group → union-row mapping needs only `fragments` and
        // `union_gids`, both owned copies — drop the cut first so the
        // lookup below can never panic while a lock is held (and
        // admissions stop queueing behind the reduction's tail work).
        drop(placements);
        drop(shards);
        let groups = groups
            .into_iter()
            .map(|g| {
                let mut rows: Vec<u32> = g
                    .iter()
                    .flat_map(|&f| fragments[f].members.iter())
                    .map(|gid| {
                        union_gids.binary_search(gid).expect("union covers its groups") as u32
                    })
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                UnionCut { fragment_ids: g, rows }
            })
            .collect();
        ReduceCut { epoch, fragments, union_gids, union_data, groups, pairs_tested, pairs_linked }
    }
}

/// [`ClusterSummary`] under the reduction rank: higher density is
/// greater; equal densities rank the *smaller* `(shard, cluster)`
/// greater (the deterministic tie-break).
struct Ranked(ClusterSummary);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .density
            .total_cmp(&other.0.density)
            .then_with(|| other.0.cluster.cmp(&self.0.cluster))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use alid_affinity::kernel::LaplacianKernel;

    pub(crate) fn test_params() -> AlidParams {
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = AlidParams::new(kernel);
        p.first_roi_radius = kernel.distance_at(0.5);
        p.density_threshold = 0.7;
        p.min_cluster_size = 3;
        p.lsh.seed = 5;
        p
    }

    fn two_blob_items(n: usize) -> Vec<Vec<f64>> {
        // Two separable blobs in 2-d plus occasional noise.
        (0..n)
            .map(|i| match i % 5 {
                0 | 1 => vec![(i % 7) as f64 * 0.03, 0.0],
                2 | 3 => vec![40.0 + (i % 7) as f64 * 0.03, 40.0],
                _ => vec![i as f64 * 17.0, -(i as f64) * 23.0],
            })
            .collect()
    }

    fn service(shards: usize) -> Service {
        Service::new(ServiceConfig::new(2, shards, test_params()).with_batch(8))
    }

    #[test]
    fn ingest_assigns_dense_global_ids_in_order() {
        let svc = service(4);
        for (i, v) in two_blob_items(20).iter().enumerate() {
            match svc.ingest(v) {
                Admission::Enqueued { id, .. } => assert_eq!(id, i as u64),
                Admission::Busy { .. } => panic!("queues are far from full"),
            }
        }
        assert_eq!(svc.len(), 20);
    }

    #[test]
    fn backpressure_refuses_beyond_capacity_and_assigns_no_id() {
        let cfg = ServiceConfig::new(2, 1, test_params()).with_queue_capacity(3);
        let svc = Service::new(cfg);
        let items = two_blob_items(6);
        let verdicts = svc.ingest_batch(items.iter().map(Vec::as_slice));
        let enqueued = verdicts.iter().filter(|a| matches!(a, Admission::Enqueued { .. })).count();
        assert_eq!(enqueued, 3, "{verdicts:?}");
        assert_eq!(svc.len(), 3, "refused items must not consume ids");
        for a in &verdicts[3..] {
            assert!(matches!(a, Admission::Busy { depth: 3, .. }), "{a:?}");
        }
        // Draining frees the queue; admission resumes.
        svc.drain();
        assert!(matches!(svc.ingest(&items[0]), Admission::Enqueued { .. }));
    }

    #[test]
    fn drain_applies_everything_and_detects() {
        let svc = service(2);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        let report = svc.drain();
        assert_eq!(report.applied, 40);
        svc.sweep();
        let depths = svc.depths();
        assert!(depths.iter().all(|d| d.queued == 0));
        assert_eq!(depths.iter().map(|d| d.items).sum::<usize>(), 40);
        let clusters = svc.summaries();
        assert!(clusters.len() >= 2, "both blobs should be detected, got {clusters:?}");
    }

    #[test]
    fn assignment_tracks_items_through_their_shards() {
        let svc = service(3);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let mut explained = 0;
        for id in 0..40u64 {
            let a = svc.assignment(id).expect("known id");
            if let Some(cref) = a {
                explained += 1;
                // The claimed cluster must actually exist.
                let shard = svc.shard(cref.shard as usize);
                assert!((cref.cluster as usize) < shard.stream.clusters().len());
            }
        }
        assert!(explained >= 16, "most blob items should be explained, got {explained}");
        assert_eq!(svc.assignment(40), None, "unknown id");
    }

    #[test]
    fn probe_finds_the_home_cluster_without_mutating() {
        let svc = service(2);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let before = svc.depths();
        let hit = svc.probe(&[0.05, 0.0]);
        assert!(hit.is_some(), "an in-blob vector must probe into its cluster");
        let miss = svc.probe(&[9e5, -9e5]);
        assert!(miss.is_none(), "far noise must not probe into anything");
        assert_eq!(svc.depths(), before, "probe mutated the service");
    }

    #[test]
    fn top_k_is_density_sorted_and_deterministic() {
        let svc = service(4);
        let items = two_blob_items(60);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let top = svc.top_k(8);
        for w in top.windows(2) {
            assert!(w[0].density >= w[1].density, "top-k not density-sorted: {:?}", top);
        }
        assert_eq!(top, svc.top_k(8), "repeat query must be identical");
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn ingest_rejects_wrong_dim() {
        let svc = service(1);
        let _ = svc.ingest(&[1.0]);
    }

    /// The bounded selection must agree with the old clone-and-sort
    /// reduction at every k, including k = 0, k beyond the cluster
    /// count, and the `usize::MAX` "everything" query.
    #[test]
    fn top_k_heap_matches_full_sort_at_every_k() {
        let svc = service(4);
        let items = two_blob_items(60);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let mut full = svc.summaries();
        full.sort_by(|a, b| {
            b.density.total_cmp(&a.density).then_with(|| a.cluster.cmp(&b.cluster))
        });
        assert!(full.len() >= 2, "fixture must produce several clusters");
        for k in 0..full.len() + 2 {
            assert_eq!(svc.top_k(k), full[..k.min(full.len())], "k = {k}");
        }
        assert_eq!(svc.top_k(usize::MAX), full);
    }

    #[test]
    fn busy_admissions_are_counted_per_shard() {
        let cfg = ServiceConfig::new(2, 1, test_params()).with_queue_capacity(2);
        let svc = Service::new(cfg);
        let items = two_blob_items(6);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        assert_eq!(svc.depths()[0].busy, 4, "four of six admissions refused");
        svc.drain();
        assert_eq!(svc.depths()[0].busy, 4, "draining never clears the telemetry");
        // `/healthz` and `/metrics` are the same counter now: the
        // registry must render exactly what `depths()` reports.
        let text = svc.metrics_registry().render_prometheus();
        assert!(
            text.contains("alid_service_busy_total{shard=\"0\"} 4"),
            "registry and depths() must agree: {text}"
        );
        // Per-service registries must not bleed into one another.
        let other = Service::new(ServiceConfig::new(2, 1, test_params()).with_queue_capacity(2));
        assert_eq!(other.depths()[0].busy, 0, "fresh service, fresh counters");
    }

    /// On one shard no cross-shard pair exists, so the merged view is
    /// exactly the raw reduction.
    #[test]
    fn merged_view_on_one_shard_equals_the_raw_view() {
        let svc = service(1);
        let items = two_blob_items(60);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let merged = svc.merged_view();
        assert_eq!(merged.stats.clusters_merged, 0);
        assert_eq!(merged.stats.pairs_tested, 0);
        let raw = svc.top_k(usize::MAX);
        assert_eq!(merged.clusters.len(), raw.len());
        for (m, r) in merged.clusters.iter().zip(&raw) {
            assert_eq!(m.rep, r.cluster);
            assert_eq!(m.fragments, vec![r.cluster]);
            assert_eq!(m.size(), r.size);
            assert_eq!(m.density.to_bits(), r.density.to_bits());
        }
    }

    #[test]
    fn merged_view_is_cached_until_a_mutation() {
        let svc = service(4);
        let items = two_blob_items(60);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let first = svc.merged_view();
        // Unmutated repeats serve the same Arc, not a recomputation.
        let second = svc.merged_view();
        assert!(Arc::ptr_eq(&first, &second), "cache must serve repeats");
        // A mutation invalidates; the fresh view explains the new
        // member (global id 60, inside blob A).
        let in_first = first.clusters.iter().any(|c| c.members.contains(&60));
        assert!(!in_first, "id 60 does not exist yet");
        svc.ingest(&[0.01, 0.0]);
        // Enqueue alone leaves the cache hot: a queued item cannot
        // appear in any cluster until a drain applies it.
        assert!(
            Arc::ptr_eq(&first, &svc.merged_view()),
            "admission without a drain must not invalidate the cache"
        );
        svc.drain();
        svc.sweep();
        let third = svc.merged_view();
        assert!(!Arc::ptr_eq(&first, &third), "ingest must invalidate the cache");
        assert!(
            third.clusters.iter().any(|c| c.members.contains(&60)),
            "the new member shows up in the merged view: {:?}",
            third.clusters
        );
    }

    /// Regression: a router narrower than the merge radius used to
    /// trip the probe enumerator's assertion while the reduce held
    /// every lock, poisoning the whole service off one query. The
    /// radius now clamps to the signature width.
    #[test]
    fn merged_view_survives_a_router_narrower_than_the_merge_radius() {
        let mut cfg = ServiceConfig::new(2, 2, test_params()).with_batch(8).with_merge_radius(4);
        cfg.router_bits = 1;
        let svc = Service::new(cfg);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let view = svc.merged_view();
        assert!(!view.clusters.is_empty());
        // And the service is still alive for every other query.
        assert!(matches!(svc.ingest(&items[0]), Admission::Enqueued { .. }));
    }

    /// `set_merge_knobs` reconfigures the reducer post-construction
    /// (the serve CLI's restore path) and invalidates the cache.
    #[test]
    fn set_merge_knobs_applies_and_invalidates() {
        let mut svc = service(2);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let before = svc.merged_view();
        svc.set_merge_knobs(3, 1);
        assert_eq!(svc.config().merge_sample, 3);
        assert_eq!(svc.config().merge_radius, 1);
        let after = svc.merged_view();
        assert!(!Arc::ptr_eq(&before, &after), "knob changes must invalidate the cache");
    }

    #[test]
    fn top_k_merged_truncates_the_ranked_view() {
        let svc = service(2);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let all = svc.merged_view();
        assert!(all.clusters.len() >= 2);
        let top = svc.top_k_merged(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0], all.clusters[0]);
        for w in all.clusters.windows(2) {
            assert!(w[0].density >= w[1].density, "merged view must stay rank-ordered");
        }
    }
}
