//! The sharded service core: routing, bounded admission, parallel
//! drain, and cross-shard queries.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use alid_affinity::cost::CostModel;
use alid_core::streaming::{StreamUpdate, StreamingAlid};
use alid_core::AlidParams;
use alid_exec::ExecPolicy;
use alid_lsh::ShardRouter;
use serde::{Json, Serialize};

/// Static configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Feature dimensionality of every ingested vector.
    pub dim: usize,
    /// Number of hash-partitioned [`StreamingAlid`] shards.
    pub shards: usize,
    /// Per-shard sweep period (arrivals between detection passes).
    pub batch: usize,
    /// Per-shard bound on admitted-but-unapplied items; admissions
    /// beyond it are refused with [`Admission::Busy`].
    pub queue_capacity: usize,
    /// Sign bits of the routing signature.
    pub router_bits: usize,
    /// Seed of the routing hyperplanes. Independent of `params.lsh.seed`
    /// so re-seeding detection never silently re-partitions the stream.
    pub router_seed: u64,
    /// Detection parameters handed to every shard.
    pub params: AlidParams,
    /// Execution policy for the service's own fan-out phases (the
    /// cross-shard drain). Shard-internal sweeps follow `params.exec`.
    pub exec: ExecPolicy,
}

impl ServiceConfig {
    /// A config with serving-friendly defaults: sweep period 32,
    /// queue capacity 1024, 16 routing bits.
    ///
    /// # Panics
    /// Panics unless `dim >= 1` and `shards >= 1`.
    pub fn new(dim: usize, shards: usize, params: AlidParams) -> Self {
        assert!(dim >= 1, "dimensionality must be positive");
        assert!(shards >= 1, "need at least one shard");
        Self {
            dim,
            shards,
            batch: 32,
            queue_capacity: 1024,
            router_bits: 16,
            router_seed: 0xa11d,
            params,
            exec: ExecPolicy::sequential(),
        }
    }

    /// Replaces the sweep period.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "sweep period must be positive");
        self.batch = batch;
        self
    }

    /// Replaces the per-shard queue capacity.
    ///
    /// # Panics
    /// Panics if `queue_capacity == 0`.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        assert!(queue_capacity >= 1, "queue capacity must be positive");
        self.queue_capacity = queue_capacity;
        self
    }

    /// Replaces the service-level execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }
}

/// Where an item lives: which shard, and its arrival position within
/// that shard's substream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Owning shard.
    pub shard: u32,
    /// Arrival index within the shard's substream.
    pub local: u32,
}

/// A cluster's global address: `(shard, index within the shard)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ClusterRef {
    /// Owning shard.
    pub shard: u32,
    /// Cluster index within the shard (stable: shards only append).
    pub cluster: u32,
}

/// The admission decision for one ingested item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: the item received a global id and a queue slot on its
    /// shard (`depth` = queue length after the enqueue).
    Enqueued {
        /// Global item id (dense, in admission order).
        id: u64,
        /// Shard the router chose.
        shard: u32,
        /// Shard queue depth right after this enqueue.
        depth: usize,
    },
    /// Refused: the shard's queue is full. The item holds no id; the
    /// caller decides whether to retry, shed, or block.
    Busy {
        /// Shard the router chose.
        shard: u32,
        /// The (full) queue's depth.
        depth: usize,
    },
}

impl Serialize for Admission {
    fn to_json(&self) -> Json {
        match *self {
            Admission::Enqueued { id, shard, depth } => Json::object([
                ("status", "enqueued".to_json()),
                ("id", id.to_json()),
                ("shard", shard.to_json()),
                ("depth", depth.to_json()),
            ]),
            Admission::Busy { shard, depth } => Json::object([
                ("status", "busy".to_json()),
                ("shard", shard.to_json()),
                ("depth", depth.to_json()),
            ]),
        }
    }
}

/// What one [`Service::drain`] call applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Queued items applied to their shards.
    pub applied: usize,
    /// Items that attached to an existing cluster on the ingest path.
    pub attached: usize,
    /// Items left buffered as unexplained.
    pub buffered: usize,
    /// New dominant clusters promoted by triggered sweeps.
    pub promoted: usize,
}

impl Serialize for DrainReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("applied", self.applied.to_json()),
            ("attached", self.attached.to_json()),
            ("buffered", self.buffered.to_json()),
            ("promoted", self.promoted.to_json()),
        ])
    }
}

/// Per-shard load metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardDepth {
    /// Admitted-but-unapplied items in the ingest queue.
    pub queued: usize,
    /// Applied items the shard has not yet explained (its sweep
    /// buffer).
    pub pending: usize,
    /// Items the shard has applied.
    pub items: usize,
    /// Dominant clusters the shard currently holds.
    pub clusters: usize,
}

impl Serialize for ShardDepth {
    fn to_json(&self) -> Json {
        Json::object([
            ("queued", self.queued.to_json()),
            ("pending", self.pending.to_json()),
            ("items", self.items.to_json()),
            ("clusters", self.clusters.to_json()),
        ])
    }
}

/// A cluster's cross-shard summary row.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSummary {
    /// Global address.
    pub cluster: ClusterRef,
    /// Member count.
    pub size: usize,
    /// Graph density `π(x)`.
    pub density: f64,
}

impl Serialize for ClusterSummary {
    fn to_json(&self) -> Json {
        Json::object([
            ("shard", self.cluster.shard.to_json()),
            ("cluster", self.cluster.cluster.to_json()),
            ("size", self.size.to_json()),
            ("density", self.density.to_json()),
        ])
    }
}

/// One shard: the streaming detector plus its bounded ingest queue.
pub(crate) struct Shard {
    pub(crate) stream: StreamingAlid,
    pub(crate) queue: VecDeque<Vec<f64>>,
}

/// The sharded online detection service. Thread-safe: admission,
/// drain and queries may be called concurrently from any number of
/// threads (the HTTP front end does exactly that).
pub struct Service {
    cfg: ServiceConfig,
    router: ShardRouter,
    shards: Vec<Mutex<Shard>>,
    /// Global id -> placement, in admission order. Lock order: a shard
    /// lock may be held while taking this lock (admission); never the
    /// reverse.
    placements: Mutex<Vec<Placement>>,
    cost: Arc<CostModel>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("dim", &self.cfg.dim)
            .field("shards", &self.cfg.shards)
            .field("items", &self.len())
            .finish_non_exhaustive()
    }
}

impl Service {
    /// An empty service.
    pub fn new(cfg: ServiceConfig) -> Self {
        let router = ShardRouter::new(cfg.dim, cfg.router_bits, cfg.router_seed);
        let cost = CostModel::shared();
        let shards = (0..cfg.shards)
            .map(|_| {
                Mutex::new(Shard {
                    stream: StreamingAlid::new(cfg.dim, cfg.params, cfg.batch, Arc::clone(&cost)),
                    queue: VecDeque::new(),
                })
            })
            .collect();
        Self { cfg, router, shards, placements: Mutex::new(Vec::new()), cost }
    }

    /// Rebuilds a service from restored parts (the snapshot codec's
    /// constructor).
    pub(crate) fn from_parts(
        cfg: ServiceConfig,
        shards: Vec<Shard>,
        placements: Vec<Placement>,
        cost: Arc<CostModel>,
    ) -> Self {
        let router = ShardRouter::new(cfg.dim, cfg.router_bits, cfg.router_seed);
        Self {
            cfg,
            router,
            shards: shards.into_iter().map(Mutex::new).collect(),
            placements: Mutex::new(placements),
            cost,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shared cost model all shards account into.
    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Total admitted items (applied + queued).
    pub fn len(&self) -> usize {
        self.placements.lock().expect("placements").len()
    }

    /// Whether nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, s: usize) -> MutexGuard<'_, Shard> {
        self.shards[s].lock().expect("shard mutex")
    }

    /// Test-only peek at one shard's raw state (production readers go
    /// through the query API or `lock_all`).
    #[cfg(test)]
    pub(crate) fn shard_state(&self, s: usize) -> MutexGuard<'_, Shard> {
        self.shard(s)
    }

    /// Locks the whole service — every shard (in index order) and the
    /// placement registry — and returns the guards, giving the
    /// snapshot codec a *consistent cut*: no item can be captured in
    /// a shard queue without its placement entry (or vice versa).
    /// The order is compatible with `ingest` (one shard, then
    /// placements), so no lock cycle exists: an ingest holding shard
    /// `s` blocks this method at `s` *before* it reaches the
    /// placement lock.
    pub(crate) fn lock_all(&self) -> (Vec<MutexGuard<'_, Shard>>, MutexGuard<'_, Vec<Placement>>) {
        let shards: Vec<_> = (0..self.shards.len()).map(|s| self.shard(s)).collect();
        let placements = self.placements.lock().expect("placements");
        (shards, placements)
    }

    /// The shard the router assigns to `v` (pure; exposed so clients
    /// can pre-partition their own batches).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn route(&self, v: &[f64]) -> usize {
        self.router.route(v, self.shards.len())
    }

    /// Admits one item: routes it, enqueues it on its shard (bounded),
    /// and assigns the global id. The item is *not* applied until the
    /// next [`Self::drain`] — admission is cheap and never triggers a
    /// sweep.
    ///
    /// # Panics
    /// Panics if `v.len() != config().dim`.
    pub fn ingest(&self, v: &[f64]) -> Admission {
        assert_eq!(v.len(), self.cfg.dim, "ingested vector dimensionality mismatch");
        let s = self.route(v);
        let mut shard = self.shard(s);
        if shard.queue.len() >= self.cfg.queue_capacity {
            return Admission::Busy { shard: s as u32, depth: shard.queue.len() };
        }
        let local = (shard.stream.len() + shard.queue.len()) as u32;
        shard.queue.push_back(v.to_vec());
        let depth = shard.queue.len();
        // Shard lock still held: the global order must agree with the
        // shard-local order for items of the same shard.
        let mut placements = self.placements.lock().expect("placements");
        let id = placements.len() as u64;
        placements.push(Placement { shard: s as u32, local });
        Admission::Enqueued { id, shard: s as u32, depth }
    }

    /// Admits a batch in order. Stops at nothing: every item gets its
    /// own admission verdict (a full shard refuses, others continue).
    pub fn ingest_batch<'a, I>(&self, items: I) -> Vec<Admission>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        items.into_iter().map(|v| self.ingest(v)).collect()
    }

    /// Applies every queued item to its shard, fanning out across
    /// shards on the configured [`ServiceConfig::exec`] policy (this
    /// is where server threads reuse the shared exec pool). Per-shard
    /// application is strictly FIFO, so the outcome is byte-identical
    /// for any worker count.
    pub fn drain(&self) -> DrainReport {
        let reports = self.cfg.exec.map_indexed(self.shards.len(), |s| {
            let mut shard = self.shard(s);
            let mut report = DrainReport::default();
            while let Some(v) = shard.queue.pop_front() {
                report.applied += 1;
                match shard.stream.push(&v) {
                    StreamUpdate::Attached(_) => report.attached += 1,
                    StreamUpdate::Buffered => report.buffered += 1,
                    StreamUpdate::SweptNewClusters(k) => report.promoted += k,
                }
            }
            report
        });
        let mut total = DrainReport::default();
        for r in reports {
            total.applied += r.applied;
            total.attached += r.attached;
            total.buffered += r.buffered;
            total.promoted += r.promoted;
        }
        total
    }

    /// Forces a detection sweep on every shard (tail flush — the
    /// stream analogue of "run detection on what's left").
    pub fn sweep(&self) -> usize {
        self.cfg
            .exec
            .map_indexed(self.shards.len(), |s| self.shard(s).stream.sweep())
            .into_iter()
            .sum()
    }

    /// The current cluster assignment of admitted item `id`: `None`
    /// for unknown ids; `Some(None)` while the item is queued or
    /// unexplained; `Some(Some(cluster))` once a cluster claims it.
    pub fn assignment(&self, id: u64) -> Option<Option<ClusterRef>> {
        let placement = {
            let placements = self.placements.lock().expect("placements");
            *placements.get(id as usize)?
        };
        let shard = self.shard(placement.shard as usize);
        let assigned = shard
            .stream
            .assignments()
            .get(placement.local as usize)
            .copied()
            .flatten()
            .map(|c| ClusterRef { shard: placement.shard, cluster: c as u32 });
        Some(assigned)
    }

    /// Read-only attachment probe: the densest cluster on `v`'s shard
    /// that `v` would join under the infective-attachment rule
    /// (`π(s_new, x_c) >= π(x_c)`), without mutating anything. `None`
    /// when no cluster would accept the vector. Delegates to
    /// [`StreamingAlid::best_infective`] — the same evaluation the
    /// ingest path runs — so probe answers can never drift from what
    /// an actual ingest of `v` would decide.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn probe(&self, v: &[f64]) -> Option<(ClusterRef, f64)> {
        assert_eq!(v.len(), self.cfg.dim, "probed vector dimensionality mismatch");
        let s = self.route(v);
        let shard = self.shard(s);
        let all = 0..shard.stream.clusters().len();
        shard
            .stream
            .best_infective(v, all)
            .map(|(c, density, _)| (ClusterRef { shard: s as u32, cluster: c as u32 }, density))
    }

    /// Every shard's current load metrics.
    pub fn depths(&self) -> Vec<ShardDepth> {
        (0..self.shards.len())
            .map(|s| {
                let shard = self.shard(s);
                ShardDepth {
                    queued: shard.queue.len(),
                    pending: shard.stream.pending().len(),
                    items: shard.stream.len(),
                    clusters: shard.stream.clusters().len(),
                }
            })
            .collect()
    }

    /// Summaries of every cluster across all shards, in `(shard,
    /// cluster)` order.
    pub fn summaries(&self) -> Vec<ClusterSummary> {
        let mut out = Vec::new();
        for s in 0..self.shards.len() {
            let shard = self.shard(s);
            for (c, cluster) in shard.stream.clusters().iter().enumerate() {
                out.push(ClusterSummary {
                    cluster: ClusterRef { shard: s as u32, cluster: c as u32 },
                    size: cluster.members.len(),
                    density: cluster.density,
                });
            }
        }
        out
    }

    /// The `k` densest clusters service-wide — the PALID reduction
    /// rule (Fig. 5's "maximum density wins") applied across shards:
    /// candidates are ranked by density, ties broken by `(shard,
    /// cluster)` so the merge is deterministic.
    pub fn top_k(&self, k: usize) -> Vec<ClusterSummary> {
        let mut all = self.summaries();
        all.sort_by(|a, b| b.density.total_cmp(&a.density).then_with(|| a.cluster.cmp(&b.cluster)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alid_affinity::kernel::LaplacianKernel;

    pub(crate) fn test_params() -> AlidParams {
        let kernel = LaplacianKernel::l2(1.0);
        let mut p = AlidParams::new(kernel);
        p.first_roi_radius = kernel.distance_at(0.5);
        p.density_threshold = 0.7;
        p.min_cluster_size = 3;
        p.lsh.seed = 5;
        p
    }

    fn two_blob_items(n: usize) -> Vec<Vec<f64>> {
        // Two separable blobs in 2-d plus occasional noise.
        (0..n)
            .map(|i| match i % 5 {
                0 | 1 => vec![(i % 7) as f64 * 0.03, 0.0],
                2 | 3 => vec![40.0 + (i % 7) as f64 * 0.03, 40.0],
                _ => vec![i as f64 * 17.0, -(i as f64) * 23.0],
            })
            .collect()
    }

    fn service(shards: usize) -> Service {
        Service::new(ServiceConfig::new(2, shards, test_params()).with_batch(8))
    }

    #[test]
    fn ingest_assigns_dense_global_ids_in_order() {
        let svc = service(4);
        for (i, v) in two_blob_items(20).iter().enumerate() {
            match svc.ingest(v) {
                Admission::Enqueued { id, .. } => assert_eq!(id, i as u64),
                Admission::Busy { .. } => panic!("queues are far from full"),
            }
        }
        assert_eq!(svc.len(), 20);
    }

    #[test]
    fn backpressure_refuses_beyond_capacity_and_assigns_no_id() {
        let cfg = ServiceConfig::new(2, 1, test_params()).with_queue_capacity(3);
        let svc = Service::new(cfg);
        let items = two_blob_items(6);
        let verdicts = svc.ingest_batch(items.iter().map(Vec::as_slice));
        let enqueued = verdicts.iter().filter(|a| matches!(a, Admission::Enqueued { .. })).count();
        assert_eq!(enqueued, 3, "{verdicts:?}");
        assert_eq!(svc.len(), 3, "refused items must not consume ids");
        for a in &verdicts[3..] {
            assert!(matches!(a, Admission::Busy { depth: 3, .. }), "{a:?}");
        }
        // Draining frees the queue; admission resumes.
        svc.drain();
        assert!(matches!(svc.ingest(&items[0]), Admission::Enqueued { .. }));
    }

    #[test]
    fn drain_applies_everything_and_detects() {
        let svc = service(2);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        let report = svc.drain();
        assert_eq!(report.applied, 40);
        svc.sweep();
        let depths = svc.depths();
        assert!(depths.iter().all(|d| d.queued == 0));
        assert_eq!(depths.iter().map(|d| d.items).sum::<usize>(), 40);
        let clusters = svc.summaries();
        assert!(clusters.len() >= 2, "both blobs should be detected, got {clusters:?}");
    }

    #[test]
    fn assignment_tracks_items_through_their_shards() {
        let svc = service(3);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let mut explained = 0;
        for id in 0..40u64 {
            let a = svc.assignment(id).expect("known id");
            if let Some(cref) = a {
                explained += 1;
                // The claimed cluster must actually exist.
                let shard = svc.shard(cref.shard as usize);
                assert!((cref.cluster as usize) < shard.stream.clusters().len());
            }
        }
        assert!(explained >= 16, "most blob items should be explained, got {explained}");
        assert_eq!(svc.assignment(40), None, "unknown id");
    }

    #[test]
    fn probe_finds_the_home_cluster_without_mutating() {
        let svc = service(2);
        let items = two_blob_items(40);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let before = svc.depths();
        let hit = svc.probe(&[0.05, 0.0]);
        assert!(hit.is_some(), "an in-blob vector must probe into its cluster");
        let miss = svc.probe(&[9e5, -9e5]);
        assert!(miss.is_none(), "far noise must not probe into anything");
        assert_eq!(svc.depths(), before, "probe mutated the service");
    }

    #[test]
    fn top_k_is_density_sorted_and_deterministic() {
        let svc = service(4);
        let items = two_blob_items(60);
        svc.ingest_batch(items.iter().map(Vec::as_slice));
        svc.drain();
        svc.sweep();
        let top = svc.top_k(8);
        for w in top.windows(2) {
            assert!(w[0].density >= w[1].density, "top-k not density-sorted: {:?}", top);
        }
        assert_eq!(top, svc.top_k(8), "repeat query must be identical");
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn ingest_rejects_wrong_dim() {
        let svc = service(1);
        let _ = svc.ingest(&[1.0]);
    }
}
