//! Sharded online dominant-cluster detection as a serving system —
//! the PALID deployment story (Section 4.6) rebuilt for this
//! workspace's in-process substrate.
//!
//! The paper scales ALID by *partitioning* detection over Spark
//! executors and *reducing* overlapping claims by maximum density.
//! This crate is that route taken to its serving conclusion: a
//! [`Service`] wraps N hash-partitioned
//! [`StreamingAlid`](alid_core::streaming::StreamingAlid) shards
//! behind one frontend, with
//!
//! * **deterministic routing** — a seeded SimHash signature
//!   ([`alid_lsh::ShardRouter`]) maps every vector to its shard, so
//!   re-ingesting the same stream with the same shard count is
//!   byte-reproducible, on any machine and any worker count;
//! * **bounded admission** — per-shard ingest queues with explicit
//!   [`Admission::Busy`] backpressure and depth metrics, instead of
//!   unbounded buffering;
//! * **queries** — point assignment lookup, read-only attachment
//!   probes, per-cluster summaries, cross-shard top-k ranked by the
//!   PALID maximum-density rule, and the *merged* view ([`reduce`]):
//!   the full reduce phase that joins fragments of a
//!   hyperplane-straddling cluster by re-running detection on their
//!   member union (`Service::top_k_merged`,
//!   `GET /clusters?view=merged`), cached between mutations;
//! * **persistence** — a versioned binary [`snapshot`] of the whole
//!   service (datasets, clusters, density state, pending buffers,
//!   unapplied queues, placements) that restores to an instance which
//!   continues *bit-for-bit* identically to one that never stopped,
//!   plus an O(delta) append-only [`journal`] of applied mutations
//!   with group commit, segment rotation, and snapshot-folding
//!   compaction, so steady-state durability costs are proportional to
//!   the *new* data rather than everything ever ingested;
//! * **a std-only HTTP/1.1 front end** ([`http`]) — `TcpListener`
//!   acceptors over the shared exec pool's compute phases, no
//!   dependencies beyond the workspace shims — exposing `/ingest`,
//!   `/assign`, `/clusters`, `/snapshot` and `/healthz`.
//!
//! See DESIGN.md ("Sharded serving") for the determinism argument and
//! for what the reduction rule gives up versus single-instance ALID.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod http;
pub mod journal;
pub mod reduce;
pub mod service;
pub mod snapshot;

pub use journal::{recover_and_open, Journal, JournalConfig, JournalError};
pub use reduce::{MergedCluster, MergedView, ReduceStats};
pub use service::{
    Admission, ClusterRef, ClusterSummary, DrainReport, Service, ServiceConfig, ShardDepth,
};
pub use snapshot::{
    restore, restore_with_meta, snapshot_bytes, snapshot_bytes_with_meta, SnapshotError,
    SnapshotMeta,
};
