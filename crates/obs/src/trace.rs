//! Phase-event tracing: structured spans in a bounded ring buffer,
//! drainable as JSONL.
//!
//! A [`span`] marks one region of interest (an exec phase, a peel
//! round, an HTTP request). While the tracer is **disabled** — the
//! default — a span is `None` inside: no clock read, no allocation,
//! one relaxed atomic load. While **enabled**, the span stamps start
//! and end against a process-wide epoch, remembers its parent (the
//! innermost open span on the same thread), carries caller-supplied
//! payload counters, and on drop pushes one event into a bounded ring
//! (oldest events are dropped, and counted, under pressure — tracing
//! must never grow without bound or push back on the traced system).
//!
//! Events leave the process as JSON Lines: [`drain_jsonl`] for
//! in-process consumers, [`drain_to_file`] for one-shot bench runs,
//! [`start_writer`] for a long-running server (`alid serve
//! --trace-out <path>` appends once a second). Event *content* is
//! timing, so trace files are not byte-deterministic — the parity
//! suite instead proves the traced computation's outputs are.

use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default ring capacity (events), used by the `--trace-out` flags:
/// ~64k events at ~100 B each caps tracer memory near 6 MB.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Process-unique span id (1-based; 0 is "no parent").
    pub id: u64,
    /// Enclosing span's id, 0 at top level.
    pub parent: u64,
    /// Static region name, e.g. `exec.phase`.
    pub name: &'static str,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall duration, nanoseconds.
    pub dur_ns: u64,
    /// Caller-attached payload counters, in attachment order.
    pub counters: Vec<(&'static str, u64)>,
}

struct Ring {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring { buf: VecDeque::new(), cap: DEFAULT_CAPACITY, dropped: 0 })
    })
}

/// The instant all span timestamps are relative to (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

std::thread_local! {
    /// Innermost-open-span stack of this thread, for parent links.
    static OPEN: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Turns tracing on with the given ring capacity (also resets the
/// drop count and registers the tracer's own gauges in the global
/// registry). Existing buffered events are kept.
pub fn enable(capacity: usize) {
    {
        let mut ring = ring().lock().expect("trace ring");
        ring.cap = capacity.max(1);
        ring.dropped = 0;
        while ring.buf.len() > ring.cap {
            ring.buf.pop_front();
        }
    }
    crate::global().gauge_fn(
        "alid_trace_buffered_events",
        "Completed spans waiting in the trace ring",
        &[],
        || ring().lock().expect("trace ring").buf.len() as f64,
    );
    crate::global().gauge_fn(
        "alid_trace_dropped_events",
        "Spans evicted from the full trace ring since enable",
        &[],
        || ring().lock().expect("trace ring").dropped as f64,
    );
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off. Buffered events stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether spans are currently being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a span named `name`. Near-free when tracing is disabled.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN.with(|open| {
        let mut open = open.borrow_mut();
        let parent = open.last().copied().unwrap_or(0);
        open.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            t0: Instant::now(),
            event: SpanEvent { id, parent, name, start_ns: 0, dur_ns: 0, counters: Vec::new() },
        }),
    }
}

struct SpanInner {
    t0: Instant,
    event: SpanEvent,
}

/// An open trace region; records itself on drop. See [`span`].
#[must_use = "a span measures the region it is alive for"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches (or bumps) a payload counter, e.g. `workers`,
    /// `speculated`. No-op while tracing is disabled.
    pub fn count(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            match inner.event.counters.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v += value,
                None => inner.event.counters.push((key, value)),
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else { return };
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            if let Some(at) = open.iter().rposition(|&id| id == inner.event.id) {
                open.remove(at);
            }
        });
        inner.event.dur_ns = inner.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        inner.event.start_ns =
            (inner.t0 - epoch().min(inner.t0)).as_nanos().min(u64::MAX as u128) as u64;
        let mut ring = ring().lock().expect("trace ring");
        if ring.buf.len() >= ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(inner.event);
    }
}

/// Takes every buffered event out of the ring, oldest first.
pub fn drain() -> Vec<SpanEvent> {
    ring().lock().expect("trace ring").buf.drain(..).collect()
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders events as JSON Lines (one object per event).
pub fn render_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"name\":\"");
        escape_json(e.name, &mut out);
        out.push_str(&format!(
            "\",\"id\":{},\"parent\":{},\"start_ns\":{},\"dur_ns\":{}",
            e.id, e.parent, e.start_ns, e.dur_ns
        ));
        if !e.counters.is_empty() {
            out.push_str(",\"counters\":{");
            for (i, (k, v)) in e.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(k, &mut out);
                out.push_str(&format!("\":{v}"));
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    out
}

/// Drains the ring and renders the events as JSONL.
pub fn drain_jsonl() -> String {
    render_jsonl(&drain())
}

/// Drains the ring and appends the JSONL to `path`. Returns the
/// number of events written.
pub fn drain_to_file(path: &std::path::Path) -> std::io::Result<usize> {
    let events = drain();
    if events.is_empty() {
        return Ok(0);
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(render_jsonl(&events).as_bytes())?;
    Ok(events.len())
}

/// Spawns a detached flusher thread that appends the ring's events to
/// `path` every `every` — the long-running half of `--trace-out`
/// (`alid serve` cannot drain at exit, it has no exit). Errors on the
/// first write are returned; later write errors drop that flush and
/// keep the server alive.
pub fn start_writer(path: PathBuf, every: Duration) -> std::io::Result<()> {
    // Fail fast while the caller can still report it: open (and keep)
    // the handle here rather than discovering a bad path seconds in.
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
    std::thread::Builder::new()
        .name("alid-obs-trace".into())
        .spawn(move || loop {
            std::thread::sleep(every);
            let events = drain();
            if !events.is_empty() {
                let _ = f.write_all(render_jsonl(&events).as_bytes());
                let _ = f.flush();
            }
        })
        .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracer state is process-global; tests that toggle it serialize
    /// here (separate test binaries — the parity suite — are isolated
    /// by the process boundary).
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        disable();
        drain();
        {
            let mut sp = span("quiet");
            sp.count("k", 1);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_count_and_drain_in_order() {
        let _g = guard();
        enable(64);
        drain();
        {
            let mut outer = span("outer");
            outer.count("items", 2);
            outer.count("items", 3);
            let _inner = span("inner");
        }
        disable();
        let events = drain();
        assert_eq!(events.len(), 2, "inner closes first, then outer");
        let (inner, outer) = (&events[0], &events[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, outer.id, "parent link via the thread's open stack");
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.counters, vec![("items", 5)], "repeat counts accumulate");
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let _g = guard();
        enable(4);
        drain();
        for _ in 0..10 {
            let _sp = span("spin");
        }
        disable();
        let dropped = ring().lock().expect("trace ring").dropped;
        let events = drain();
        assert_eq!(events.len(), 4, "ring keeps only the newest `cap` events");
        assert_eq!(dropped, 6);
    }

    #[test]
    fn jsonl_renders_one_escaped_object_per_event() {
        let events = vec![SpanEvent {
            id: 7,
            parent: 0,
            name: "line\"one",
            start_ns: 5,
            dur_ns: 9,
            counters: vec![("width", 4)],
        }];
        let text = render_jsonl(&events);
        assert_eq!(
            text,
            "{\"name\":\"line\\\"one\",\"id\":7,\"parent\":0,\"start_ns\":5,\"dur_ns\":9,\
             \"counters\":{\"width\":4}}\n"
        );
    }

    #[test]
    fn drain_to_file_appends_jsonl() {
        let _g = guard();
        enable(64);
        drain();
        {
            let _sp = span("filed");
        }
        disable();
        let path =
            std::env::temp_dir().join(format!("alid_obs_trace_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let wrote = drain_to_file(&path).expect("write trace");
        assert_eq!(wrote, 1);
        let text = std::fs::read_to_string(&path).expect("read trace");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains("\"name\":\"filed\""));
        let _ = std::fs::remove_file(&path);
    }
}
