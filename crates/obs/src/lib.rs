//! Workspace observability: a lock-free metrics registry plus a phase
//! span tracer (see [`trace`]).
//!
//! # Observation is telemetry, never control
//!
//! The whole crate is built around one invariant, inherited from the
//! determinism contract every other crate carries: nothing an
//! instrumented path *computes* may depend on anything this crate
//! *measures*. Three mechanisms enforce it:
//!
//! * **Write-only hot paths.** Instrumented code holds handles whose
//!   write operations ([`Counter::inc`], [`Gauge::set`],
//!   [`Histogram::observe_ns`]) are single relaxed atomic stores; the
//!   read side ([`Counter::metric_value`], [`Registry::render_prometheus`],
//!   [`Registry::snapshot_samples`]) exists only for exposition
//!   surfaces (`GET /metrics`, `/healthz`, bench provenance). The
//!   `no-metric-branching` lint rule bans the read methods from
//!   result-affecting crates outside the telemetry allowlist.
//! * **Clocks live here.** `Instant::now` is confined to this crate
//!   (the lint timing allowlist): callers time a region through
//!   [`Histogram::start_timer`] or a [`trace::span`], so a clock value
//!   can reach a metric but never a caller's control flow.
//! * **Bounded, droppable spans.** The tracer buffers events in a
//!   bounded ring and is off by default; when off, a span is an
//!   `Option::None` with no clock read. `tests/obs_parity.rs` pins
//!   bit-identical outputs with tracing on vs. off at worker counts
//!   {1, 2, 4, 8}.
//!
//! # Registry shape
//!
//! A [`Registry`] is an explicit object, not ambient global state:
//! process-wide subsystems (the exec pool, the chunk autotuners, the
//! peeler) register in [`global()`], while each `Service` instance
//! owns a private registry so concurrently running services (the unit
//! test norm) never bleed counters into each other. Registration
//! dedupes on `(name, labels)` and hands back a shared handle; the
//! hot path caches that handle in a `OnceLock`, so steady-state cost
//! is one atomic RMW per event — the registry mutex is touched only
//! at registration and render time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod trace;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Self { v: AtomicU64::new(0) }
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Read side — exposition surfaces only (`no-metric-branching`
    /// bans this from result-affecting crates).
    pub fn metric_value(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Self { bits: AtomicU64::new(0) }
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read side — exposition surfaces only.
    pub fn metric_value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Finite histogram bucket count; bucket `i` holds observations with
/// `ns <= BUCKET_FLOOR_NANOS << i`, one final implicit bucket catches
/// the overflow (`+Inf` in the exposition).
pub const HISTOGRAM_BUCKETS: usize = 26;

/// Upper bound of bucket 0 in nanoseconds (1 µs). Doubling per bucket
/// puts the last finite bound at `1 µs * 2^25` ≈ 33.6 s — wider than
/// any request/phase this workspace serves, narrower than the point
/// where a latency number stops being interesting.
pub const BUCKET_FLOOR_NANOS: u64 = 1_000;

/// A fixed log-scale latency histogram (base-2 buckets from 1 µs).
///
/// Fixed boundaries keep `observe_ns` a two-instruction affair (a
/// leading-zeros bucket index plus one atomic add) and make every
/// histogram in the process mergeable by plain addition.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum_ns: AtomicU64,
}

/// Read-side copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; index [`HISTOGRAM_BUCKETS`]
    /// is the overflow bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS + 1],
    /// Total observed nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// The bucket an observation of `ns` nanoseconds lands in.
pub fn bucket_index(ns: u64) -> usize {
    let mut i = 0;
    while i < HISTOGRAM_BUCKETS {
        if ns <= (BUCKET_FLOOR_NANOS << i) {
            return i;
        }
        i += 1;
    }
    HISTOGRAM_BUCKETS
}

/// Upper bound of finite bucket `i`, in seconds (the `le` label).
pub fn bucket_bound_seconds(i: usize) -> f64 {
    // Divide rather than multiply by 1e-9: division rounds once, so
    // the bound equals the decimal literal a scraper parses back.
    (BUCKET_FLOOR_NANOS << i) as f64 / 1e9
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; an inline const repeats the
        // initializer per element (and unlike a named const, each
        // element is a fresh atomic, not a shared one).
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS + 1],
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Starts a region timer that observes its elapsed time on drop —
    /// the only way callers outside this crate time anything, so the
    /// clock read stays in here.
    pub fn start_timer(&self) -> Timer<'_> {
        Timer { h: self, t0: Instant::now() }
    }

    /// Read side — exposition surfaces only.
    pub fn metric_value(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS + 1];
        for (b, s) in buckets.iter_mut().zip(&self.buckets) {
            *b = s.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, sum_ns: self.sum_ns.load(Ordering::Relaxed) }
    }
}

/// Observes the enclosed region's wall time into its histogram on
/// drop. See [`Histogram::start_timer`].
#[must_use = "a dropped timer observes zero elapsed time"]
pub struct Timer<'a> {
    h: &'a Histogram,
    t0: Instant,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.h.observe_ns(self.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
}

enum Kind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    /// A gauge computed at render time (exports state owned elsewhere,
    /// e.g. a `TuneState`'s EMA, without a second writer).
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(String, String)>,
    kind: Kind,
}

/// One rendered sample of a counter/gauge series (histograms
/// contribute their `_count` and `_sum`), for JSON provenance stamps.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full series name with label set, e.g. `alid_tune_per_item_ns{site="matmul"}`.
    pub series: String,
    pub value: f64,
}

/// A set of named metrics, renderable as Prometheus text exposition.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) the counter `name{labels}` and returns its
    /// shared handle. Callers cache the handle; only registration
    /// touches the registry lock.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("obs registry");
        if let Some(e) = find(&entries, name, labels) {
            if let Kind::Counter(c) = &e.kind {
                return Arc::clone(c);
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(entry(name, help, labels, Kind::Counter(Arc::clone(&c))));
        c
    }

    /// Registers (or finds) the gauge `name{labels}`.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("obs registry");
        if let Some(e) = find(&entries, name, labels) {
            if let Kind::Gauge(g) = &e.kind {
                return Arc::clone(g);
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(entry(name, help, labels, Kind::Gauge(Arc::clone(&g))));
        g
    }

    /// Registers a gauge whose value is computed by `f` at render
    /// time. Re-registering the same `(name, labels)` is a no-op (the
    /// first callback wins), so idempotent export hooks are cheap.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let mut entries = self.entries.lock().expect("obs registry");
        if find(&entries, name, labels).is_some() {
            return;
        }
        entries.push(entry(name, help, labels, Kind::GaugeFn(Box::new(f))));
    }

    /// Registers (or finds) the histogram `name{labels}`.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("obs registry");
        if let Some(e) = find(&entries, name, labels) {
            if let Kind::Histogram(h) = &e.kind {
                return Arc::clone(h);
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push(entry(name, help, labels, Kind::Histogram(Arc::clone(&h))));
        h
    }

    /// Renders every registered series in Prometheus text exposition
    /// format (sorted by name then label set; one `# HELP`/`# TYPE`
    /// header per family). Read side — exposition surfaces only.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("obs registry");
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            (entries[a].name, &entries[a].labels).cmp(&(entries[b].name, &entries[b].labels))
        });
        let mut out = String::new();
        let mut last_name = "";
        for &i in &order {
            let e = &entries[i];
            if e.name != last_name {
                expo::write_header(
                    &mut out,
                    e.name,
                    e.help,
                    match e.kind {
                        Kind::Counter(_) => "counter",
                        Kind::Gauge(_) | Kind::GaugeFn(_) => "gauge",
                        Kind::Histogram(_) => "histogram",
                    },
                );
                last_name = e.name;
            }
            match &e.kind {
                Kind::Counter(c) => {
                    expo::write_sample(&mut out, e.name, &e.labels, &fmt_u64(c.metric_value()))
                }
                Kind::Gauge(g) => {
                    expo::write_sample(&mut out, e.name, &e.labels, &fmt_f64(g.metric_value()))
                }
                Kind::GaugeFn(f) => expo::write_sample(&mut out, e.name, &e.labels, &fmt_f64(f())),
                Kind::Histogram(h) => {
                    expo::write_histogram(&mut out, e.name, &e.labels, &h.metric_value())
                }
            }
        }
        out
    }

    /// Flat counter/gauge samples (histograms as `_count`/`_sum`) in
    /// render order — the provenance stamp `report::run_header` embeds
    /// in `experiments/*.json`. Read side — exposition surfaces only.
    pub fn snapshot_samples(&self) -> Vec<Sample> {
        let entries = self.entries.lock().expect("obs registry");
        let mut out: Vec<Sample> = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            let series = |suffix: &str| expo::series_name(e.name, suffix, &e.labels);
            match &e.kind {
                Kind::Counter(c) => {
                    out.push(Sample { series: series(""), value: c.metric_value() as f64 })
                }
                Kind::Gauge(g) => out.push(Sample { series: series(""), value: g.metric_value() }),
                Kind::GaugeFn(f) => out.push(Sample { series: series(""), value: f() }),
                Kind::Histogram(h) => {
                    let snap = h.metric_value();
                    out.push(Sample { series: series("_count"), value: snap.count() as f64 });
                    out.push(Sample { series: series("_sum"), value: snap.sum_ns as f64 * 1e-9 });
                }
            }
        }
        out.sort_by(|a, b| a.series.cmp(&b.series));
        out
    }
}

fn find<'a>(entries: &'a [Entry], name: &str, labels: &[(&str, &str)]) -> Option<&'a Entry> {
    entries.iter().find(|e| {
        e.name == name
            && e.labels.len() == labels.len()
            && e.labels.iter().zip(labels).all(|((k0, v0), (k1, v1))| k0 == k1 && v0 == v1)
    })
}

fn entry(name: &'static str, help: &'static str, labels: &[(&str, &str)], kind: Kind) -> Entry {
    let labels = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    Entry { name, help, labels, kind }
}

/// The process-wide registry: exec pool, autotuners, peeler — state
/// with exactly one instance per process. Anything instantiable many
/// times per process (a `Service`) owns a private [`Registry`]
/// instead, so tests running services side by side never mix series.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn fmt_u64(v: u64) -> String {
    v.to_string()
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral gauges print without a fraction, like Prometheus'
        // own formatter.
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Low-level Prometheus text-exposition writers, public so exposition
/// surfaces can append *live* series (e.g. per-shard queue depths read
/// from service state at scrape time) next to a rendered registry.
pub mod expo {
    use super::{bucket_bound_seconds, HistogramSnapshot, HISTOGRAM_BUCKETS};

    /// Escapes a label value per the exposition format: backslash,
    /// double quote and newline.
    pub fn escape_label(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out
    }

    /// `# HELP` + `# TYPE` lines for one family.
    pub fn write_header(out: &mut String, name: &str, help: &str, kind: &str) {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(help);
        out.push_str("\n# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
    }

    /// `name{labels} value` with an extra name suffix (`_bucket`, ...)
    /// and extra labels appended after the fixed set.
    fn write_suffixed(
        out: &mut String,
        name: &str,
        suffix: &str,
        labels: &[(String, String)],
        extra: Option<(&str, &str)>,
        value: &str,
    ) {
        out.push_str(name);
        out.push_str(suffix);
        if !labels.is_empty() || extra.is_some() {
            out.push('{');
            let mut first = true;
            for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_label(v));
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        out.push_str(value);
        out.push('\n');
    }

    /// One `name{labels} value` sample line.
    pub fn write_sample(out: &mut String, name: &str, labels: &[(String, String)], value: &str) {
        write_suffixed(out, name, "", labels, None, value);
    }

    /// A full histogram family: cumulative `_bucket` lines (ending in
    /// `le="+Inf"`), then `_sum` (seconds) and `_count`.
    pub fn write_histogram(
        out: &mut String,
        name: &str,
        labels: &[(String, String)],
        snap: &HistogramSnapshot,
    ) {
        let mut cum = 0u64;
        for (i, &b) in snap.buckets.iter().enumerate() {
            cum += b;
            let le = if i == HISTOGRAM_BUCKETS {
                "+Inf".to_string()
            } else {
                format!("{}", bucket_bound_seconds(i))
            };
            write_suffixed(out, name, "_bucket", labels, Some(("le", &le)), &cum.to_string());
        }
        write_suffixed(out, name, "_sum", labels, None, &format!("{}", snap.sum_ns as f64 * 1e-9));
        write_suffixed(out, name, "_count", labels, None, &cum.to_string());
    }

    /// `name{labels}` (with an optional name suffix) as a flat series
    /// key, for JSON provenance samples.
    pub fn series_name(name: &str, suffix: &str, labels: &[(String, String)]) -> String {
        let mut out = String::new();
        out.push_str(name);
        out.push_str(suffix);
        if !labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_label(v));
                out.push('"');
            }
            out.push('}');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("t_total", "help", &[("k", "v")]);
        c.inc();
        c.add(4);
        assert_eq!(c.metric_value(), 5);
        // Same (name, labels) -> same handle.
        let again = r.counter("t_total", "help", &[("k", "v")]);
        again.inc();
        assert_eq!(c.metric_value(), 6);
        // Different labels -> distinct series.
        let other = r.counter("t_total", "help", &[("k", "w")]);
        assert_eq!(other.metric_value(), 0);
        let g = r.gauge("t_gauge", "help", &[]);
        g.set(2.5);
        assert_eq!(g.metric_value(), 2.5);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two_from_one_microsecond() {
        // Bucket 0 is (0, 1µs]; each bucket doubles; past the last
        // finite bound everything lands in the overflow bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1_000), 0, "exact bound is inclusive");
        assert_eq!(bucket_index(1_001), 1, "one past the bound spills over");
        assert_eq!(bucket_index(2_000), 1);
        assert_eq!(bucket_index(2_001), 2);
        let last = BUCKET_FLOOR_NANOS << (HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(last), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(last + 1), HISTOGRAM_BUCKETS, "overflow bucket");
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
        assert_eq!(bucket_bound_seconds(0), 1e-6);
        // ~33.6 s: wide enough for any phase in this workspace.
        assert!(bucket_bound_seconds(HISTOGRAM_BUCKETS - 1) > 30.0);
    }

    #[test]
    fn histogram_observations_land_in_their_buckets_and_sum() {
        let h = Histogram::new();
        h.observe_ns(500); // bucket 0
        h.observe_ns(1_500); // bucket 1
        h.observe_ns(1_500); // bucket 1
        h.observe_ns(u64::MAX / 2); // overflow
        let snap = h.metric_value();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 2);
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS], 1);
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.sum_ns, 500 + 1_500 + 1_500 + u64::MAX / 2);
    }

    #[test]
    fn timer_observes_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.metric_value().count(), 1);
    }

    #[test]
    fn exposition_has_headers_escaping_and_monotone_buckets() {
        let r = Registry::new();
        r.counter("x_total", "events", &[("path", "a\"b\\c\nd")]).add(3);
        r.gauge("x_gauge", "level", &[]).set(1.0);
        r.gauge_fn("x_fn", "computed", &[], || 7.25);
        let h = r.histogram("x_seconds", "latency", &[]);
        h.observe_ns(10);
        h.observe_ns(5_000);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP x_total events\n# TYPE x_total counter\n"));
        assert!(text.contains("# TYPE x_gauge gauge\n"));
        assert!(text.contains("# TYPE x_seconds histogram\n"));
        // Label escaping: quote, backslash and newline.
        assert!(text.contains(r#"x_total{path="a\"b\\c\nd"} 3"#));
        assert!(text.contains("x_gauge 1\n"));
        assert!(text.contains("x_fn 7.25\n"));
        // Cumulative buckets: every later bucket >= every earlier one,
        // +Inf equals _count.
        let mut cum = Vec::new();
        for line in text.lines().filter(|l| l.starts_with("x_seconds_bucket")) {
            cum.push(line.rsplit(' ').next().unwrap().parse::<u64>().unwrap());
        }
        assert_eq!(cum.len(), HISTOGRAM_BUCKETS + 1);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "buckets must be cumulative");
        assert_eq!(*cum.last().unwrap(), 2);
        assert!(text.contains("x_seconds_count 2\n"));
        // Families are sorted by name.
        let fam_order: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .map(|l| l.split(' ').nth(2).unwrap())
            .collect();
        let mut sorted = fam_order.clone();
        sorted.sort_unstable();
        assert_eq!(fam_order, sorted);
    }

    #[test]
    fn snapshot_samples_flatten_histograms_and_sort() {
        let r = Registry::new();
        r.counter("b_total", "x", &[("site", "s")]).add(2);
        let h = r.histogram("a_seconds", "x", &[]);
        h.observe_ns(2_000_000_000);
        let samples = r.snapshot_samples();
        let keys: Vec<&str> = samples.iter().map(|s| s.series.as_str()).collect();
        assert_eq!(keys, vec!["a_seconds_count", "a_seconds_sum", "b_total{site=\"s\"}"]);
        assert_eq!(samples[0].value, 1.0);
        assert!((samples[1].value - 2.0).abs() < 1e-9, "sum renders in seconds");
        assert_eq!(samples[2].value, 2.0);
    }
}
