//! Chunk-size autotuning for the work-stealing execution shapes.
//!
//! The fixed heuristic of [`ExecPolicy::map_indexed`] picks a chunk
//! size from `n` and the worker count alone, so it cannot tell a
//! 50 ns kernel evaluation from a 50 µs LSH signature: cheap bodies
//! want big chunks (amortize the shared-cursor `fetch_add` and the
//! per-chunk allocation), expensive bodies want small ones (load
//! balance). A [`TuneState`] closes that loop per *call site*: the
//! tuned execution shapes time every chunk they run, fold the observed
//! per-item cost into an exponential moving average stored in the
//! handle, and later phases through the same handle size their chunks
//! to hit [`TARGET_CHUNK_NANOS`] of work per steal.
//!
//! # Why determinism survives
//!
//! The chunk size only decides how the index range `0..n` is cut into
//! steals — *which* worker computes which index, and how many indices
//! travel per cursor bump. The tuned shapes inherit the layer's core
//! contract: the value computed for index `i` depends only on `i`, and
//! results are restored to index order before returning. Timing noise
//! therefore moves wall-clock time and nothing else; the parity suite
//! (`tests/exec_parity.rs`) pins this by running autotuned phases at
//! many worker counts against the 1-worker baseline.
//!
//! [`ExecPolicy::map_indexed`]: crate::ExecPolicy::map_indexed

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Per-steal work the tuner aims for. Large enough that the shared
/// cursor and the per-chunk result vector cost well under 1% of a
/// chunk, small enough that a worker never sits on more than a
/// fraction of a millisecond another worker could have stolen.
pub const TARGET_CHUNK_NANOS: f64 = 200_000.0;

/// Ceiling on any tuned chunk: at least this many steals per worker
/// must remain or the tail of the range serializes behind one slow
/// chunk, defeating work stealing entirely.
const MIN_CHUNKS_PER_WORKER: usize = 4;

/// EMA blend weight of a fresh per-item-cost sample (the remainder
/// stays on the running average, so one anomalous phase cannot swing
/// the chunk size by more than ~2x).
const SAMPLE_WEIGHT: f64 = 0.3;

/// A per-call-site chunk autotuner handle.
///
/// Declare one `static` per tuned call site and pass it to
/// [`ExecPolicy::map_indexed_tuned`] /
/// [`ExecPolicy::for_each_index_tuned_with`]; the handle accumulates
/// that site's measured per-item cost across phases (and across
/// differently sized inputs — the cost model is per *item*, so the
/// chunk adapts to each `n` at call time).
///
/// All state is atomic: concurrent phases through one handle race only
/// on which sample lands last, never on memory safety, and a lost
/// sample merely delays convergence by one phase.
///
/// [`ExecPolicy::map_indexed_tuned`]: crate::ExecPolicy::map_indexed_tuned
/// [`ExecPolicy::for_each_index_tuned_with`]: crate::ExecPolicy::for_each_index_tuned_with
#[derive(Debug)]
pub struct TuneState {
    /// EMA of per-item cost in nanoseconds, as `f64` bits. 0 = no
    /// sample yet (the fallback heuristic decides the chunk).
    per_item_ns: AtomicU64,
    /// The chunk size the most recent tuned phase ran with (telemetry;
    /// 0 until the first tuned phase).
    last_chunk: AtomicUsize,
    /// Number of phases that fed a sample back (telemetry).
    samples: AtomicU32,
}

/// A point-in-time copy of a [`TuneState`] for reports and benches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TuneSnapshot {
    /// Smoothed per-item cost in nanoseconds (0.0 = never measured).
    pub per_item_ns: f64,
    /// Chunk size of the most recent tuned phase (0 = none ran).
    pub last_chunk: usize,
    /// Phases that contributed a timing sample.
    pub samples: u32,
}

impl TuneState {
    /// A fresh, unsampled tuner (`const`, so call sites can live in
    /// `static`s).
    pub const fn new() -> Self {
        Self {
            per_item_ns: AtomicU64::new(0),
            last_chunk: AtomicUsize::new(0),
            samples: AtomicU32::new(0),
        }
    }

    /// The chunk size a tuned phase over `n` items on `workers`
    /// workers should use right now.
    ///
    /// With at least one sample: `TARGET_CHUNK_NANOS / per_item_ns`,
    /// clamped so every worker still gets [`MIN_CHUNKS_PER_WORKER`]
    /// steals. Without samples: the same shape the untuned
    /// [`ExecPolicy::map_indexed`] heuristic uses.
    ///
    /// [`ExecPolicy::map_indexed`]: crate::ExecPolicy::map_indexed
    pub fn chunk_for(&self, n: usize, workers: usize) -> usize {
        let workers = workers.max(1);
        let ceiling = (n / (MIN_CHUNKS_PER_WORKER * workers)).max(1);
        let per_item = f64::from_bits(self.per_item_ns.load(Ordering::Relaxed));
        let chunk = if per_item > 0.0 {
            (TARGET_CHUNK_NANOS / per_item).floor().max(1.0).min(ceiling as f64) as usize
        } else if n < 4 * workers {
            1
        } else {
            (n / (8 * workers)).max(1).min(ceiling)
        };
        self.last_chunk.store(chunk, Ordering::Relaxed);
        chunk
    }

    /// Folds one phase's measurement (`items` indices over `nanos`
    /// busy nanoseconds, summed across workers) into the EMA. A phase
    /// whose whole runtime rounds to zero on a coarse clock still
    /// counts — it is clamped to one nanosecond total, i.e. "cheaper
    /// than measurable", which steers the chunk toward its ceiling
    /// exactly as an ultra-cheap body should.
    pub fn record(&self, items: usize, nanos: u64) {
        if items == 0 {
            return;
        }
        let sample = nanos.max(1) as f64 / items as f64;
        let old = f64::from_bits(self.per_item_ns.load(Ordering::Relaxed));
        let new =
            if old > 0.0 { old * (1.0 - SAMPLE_WEIGHT) + sample * SAMPLE_WEIGHT } else { sample };
        self.per_item_ns.store(new.to_bits(), Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Telemetry copy of the current state.
    pub fn snapshot(&self) -> TuneSnapshot {
        TuneSnapshot {
            per_item_ns: f64::from_bits(self.per_item_ns.load(Ordering::Relaxed)),
            last_chunk: self.last_chunk.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
        }
    }
}

impl Default for TuneState {
    fn default() -> Self {
        Self::new()
    }
}

/// Publishes a `static` [`TuneState`] into the process-global
/// `alid-obs` registry as three gauges labelled by call site:
/// `alid_tune_per_item_ns`, `alid_tune_last_chunk`,
/// `alid_tune_samples`, each `{site="<site>"}`.
///
/// Call it from the tuned call site (idempotent — the registry keeps
/// the first registration per series, so hot paths may call it on
/// every phase). This is what makes tune handles observable at all:
/// before the obs registry, `snapshot()` values were trapped in
/// process-local statics unless a bench hand-plumbed them out.
pub fn export_tune(site: &'static str, tune: &'static TuneState) {
    let r = alid_obs::global();
    r.gauge_fn(
        "alid_tune_per_item_ns",
        "Autotuner EMA of per-item cost in nanoseconds (0 = unsampled)",
        &[("site", site)],
        || tune.snapshot().per_item_ns,
    );
    r.gauge_fn(
        "alid_tune_last_chunk",
        "Chunk size the most recent tuned phase at this site ran with",
        &[("site", site)],
        || tune.snapshot().last_chunk as f64,
    );
    r.gauge_fn(
        "alid_tune_samples",
        "Phases that fed a timing sample back at this site",
        &[("site", site)],
        || tune.snapshot().samples as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsampled_state_uses_the_heuristic_shape() {
        let t = TuneState::new();
        assert_eq!(t.chunk_for(8, 4), 1, "latency-bound fan-out stays one-at-a-time");
        let big = t.chunk_for(10_000, 4);
        assert!((1..=10_000 / (4 * 4)).contains(&big), "heuristic respects the steal ceiling");
        assert_eq!(t.snapshot().samples, 0);
    }

    #[test]
    fn cheap_items_get_big_chunks_and_expensive_items_small_ones() {
        let cheap = TuneState::new();
        cheap.record(1_000_000, 50_000_000); // 50 ns/item
        let expensive = TuneState::new();
        expensive.record(1_000, 50_000_000); // 50 µs/item
        let n = 100_000;
        assert!(cheap.chunk_for(n, 4) > expensive.chunk_for(n, 4));
        assert_eq!(expensive.chunk_for(n, 4), (TARGET_CHUNK_NANOS / 50_000.0) as usize);
    }

    #[test]
    fn chunk_never_starves_workers_of_steals() {
        let t = TuneState::new();
        t.record(10, 1_000_000_000); // absurdly expensive: 0.1 s/item
        assert_eq!(t.chunk_for(1_000, 8), 1);
        let t2 = TuneState::new();
        t2.record(1_000_000_000, 1); // absurdly cheap
        assert!(t2.chunk_for(1_000, 2) <= 1_000 / (4 * 2));
    }

    #[test]
    fn ema_damps_single_outliers() {
        let t = TuneState::new();
        t.record(1_000, 100_000); // 100 ns/item baseline
        let before = t.snapshot().per_item_ns;
        t.record(1_000, 100_000_000); // 1000x outlier
        let after = t.snapshot().per_item_ns;
        assert!(after < before * 2_000.0 * SAMPLE_WEIGHT, "EMA must damp the outlier");
        assert!(after > before, "but still move toward it");
        assert_eq!(t.snapshot().samples, 2);
    }

    #[test]
    fn zero_item_measurements_are_ignored_but_zero_nanos_count() {
        let t = TuneState::new();
        t.record(0, 500);
        assert_eq!(t.snapshot().samples, 0);
        assert_eq!(t.snapshot().per_item_ns, 0.0);
        // Faster than the clock can see: clamped, recorded, and the
        // chunk heads for its ceiling.
        t.record(500, 0);
        assert_eq!(t.snapshot().samples, 1);
        assert!(t.snapshot().per_item_ns > 0.0);
        assert_eq!(t.chunk_for(1_000, 2), 1_000 / (4 * 2));
    }
}
