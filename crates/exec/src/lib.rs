//! The shared parallel-execution layer of the ALID workspace.
//!
//! Before this crate existed, three call sites each hand-rolled their
//! own `std::thread::scope` pool: `DenseAffinity` row construction, the
//! `CostModel` concurrency test and the PALID map phase (which also
//! pulled in channel machinery for work distribution). This crate is
//! now the only place in the workspace that spawns **compute**
//! threads (the sole other spawner is `alid-service`'s HTTP acceptor
//! threads, which own blocking socket I/O — a shape the bounded-phase
//! model below deliberately excludes — and push all CPU-heavy request
//! work back through this pool); every parallel phase expresses
//! itself as one of two shapes:
//!
//! * [`ExecPolicy::for_each_index`] — a *static, strided* partition of
//!   an index range, for uniform workloads that write disjoint slots
//!   (dense matrix rows);
//! * [`ExecPolicy::map_indexed`] / [`ExecPolicy::map_tasks`] — a
//!   *work-stealing* task pool over an index range, for irregular
//!   workloads (one ALID detection per seed), with results returned in
//!   **task order** regardless of which worker ran what.
//!
//! Both shapes are deterministic: the value computed for index `i`
//! depends only on `i`, never on scheduling, and `map_indexed` restores
//! task order before returning — so any `workers >= 1` produces the
//! same output, and `workers == 1` degenerates to a plain loop on the
//! calling thread with zero thread overhead (the sequential fallback).
//!
//! Uniform work-stealing phases can additionally *autotune* their chunk
//! size: [`ExecPolicy::map_indexed_tuned`] and
//! [`ExecPolicy::for_each_index_tuned_with`] time each chunk they run
//! and feed the observed per-item cost back into a per-call-site
//! [`TuneState`] handle, so cheap bodies get large chunks (amortizing
//! the shared cursor) and expensive bodies small ones (load balance) —
//! without the caller guessing. See [`tune`] for why timing noise can
//! never reach the output bytes.
//!
//! [`SharedSlice`] is the escape hatch for partitioned writes into one
//! buffer (the dense-matrix pattern, where row ownership guarantees
//! disjointness but the type system cannot see it).
//!
//! Parallel phases execute on a **lazily started persistent worker
//! pool** (see [`pool`]): the first parallel phase spawns the workers,
//! later phases reuse them, so per-phase cost is an enqueue and a
//! wakeup instead of `workers - 1` thread spawns. `workers == 1` never
//! touches the pool at all — the sequential fast path is a plain loop
//! on the calling thread.
//!
//! See DESIGN.md ("One execution substrate", "Persistent worker pool")
//! for how this layer substitutes for the paper's Spark deployment.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

mod pool;
pub mod tune;

pub use pool::thread_count as pool_thread_count;
pub use tune::{export_tune, TuneSnapshot, TuneState};

/// How a parallel phase should execute: on how many workers.
///
/// The policy travels inside parameter structs (`AlidParams`,
/// `PalidParams`) so every layer — dense affinity construction, PALID
/// mapping, multi-seed peeling — draws its worker count from one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    workers: NonZeroUsize,
}

impl ExecPolicy {
    /// Run on the calling thread only (the default).
    pub fn sequential() -> Self {
        Self { workers: NonZeroUsize::MIN }
    }

    /// Run on `n` workers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn workers(n: usize) -> Self {
        Self { workers: NonZeroUsize::new(n).expect("need at least one worker") }
    }

    /// Run on every core the OS reports (1 when detection fails).
    pub fn auto() -> Self {
        Self { workers: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN) }
    }

    /// [`Self::workers`] when an explicit count is given, [`Self::auto`]
    /// otherwise — the shape of a CLI `--workers` override.
    ///
    /// # Panics
    /// Panics if `n == Some(0)`.
    pub fn auto_or(n: Option<usize>) -> Self {
        match n {
            Some(n) => Self::workers(n),
            None => Self::auto(),
        }
    }

    /// The configured worker count (>= 1).
    #[inline]
    pub fn worker_count(&self) -> usize {
        self.workers.get()
    }

    /// `true` when the policy is single-worker.
    #[inline]
    pub fn is_sequential(&self) -> bool {
        self.workers.get() == 1
    }

    /// Applies `f` to every index in `0..n` with a **static strided
    /// partition**: worker `t` handles indices `t, t + W, t + 2W, ...`.
    ///
    /// Striding balances triangular workloads (where the cost of index
    /// `i` shrinks with `i`, as in symmetric-matrix row construction)
    /// far better than contiguous chunks. Use this shape when `f`
    /// writes to pre-partitioned disjoint storage and needs no result
    /// collection.
    pub fn for_each_index<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        self.for_each_index_with(n, || (), |(), i| f(i));
    }

    /// [`Self::for_each_index`] with a **per-worker scratch value**:
    /// `init()` runs once per logical worker and the resulting scratch
    /// is threaded through every `f(&mut scratch, i)` that worker runs.
    ///
    /// Use this when each evaluation needs a reusable buffer (e.g. an
    /// LSH signature): the sequential path allocates one scratch total,
    /// a `W`-worker phase allocates `W`, and determinism is untouched
    /// because the scratch never carries information between indices —
    /// `f` must leave the value it computes for index `i` independent
    /// of the scratch's prior contents.
    pub fn for_each_index_with<S, I, F>(&self, n: usize, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.workers.get().min(n);
        if workers <= 1 || n <= 1 {
            let mut scratch = init();
            for i in 0..n {
                f(&mut scratch, i);
            }
            return;
        }
        pool::global().run_phase(workers, &|t| {
            let mut scratch = init();
            for i in (t..n).step_by(workers) {
                f(&mut scratch, i);
            }
        });
    }

    /// Computes `f(i)` for every `i` in `0..n` on a **work-stealing
    /// task pool** and returns the results **in index order**.
    ///
    /// Workers steal chunks of `chunk` consecutive indices from a
    /// shared atomic cursor, so irregular per-task costs self-balance;
    /// a chunk of 1 is the classic one-task-at-a-time queue. Despite
    /// the dynamic schedule the output is deterministic: slot `i` of
    /// the result always holds `f(i)`.
    pub fn map_indexed_chunked<R, F>(&self, n: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_indexed_inner(n, chunk, f, None)
    }

    /// [`Self::map_indexed_chunked`] with the chunk size drawn from —
    /// and the phase's measured per-item cost fed back into — a
    /// per-call-site [`TuneState`] (see [`tune`] for the feedback loop
    /// and why determinism is untouched).
    pub fn map_indexed_tuned<R, F>(&self, tune: &TuneState, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.workers.get();
        let chunk = tune.chunk_for(n, workers);
        self.map_indexed_inner(n, chunk, f, Some(tune))
    }

    /// The shared chunked-map engine: a work-stealing cursor over
    /// `0..n` in steps of `chunk`, results restored to index order.
    /// With `tune` set, each chunk's duration is measured and the
    /// phase's total (items, busy-nanos) is folded into the handle.
    fn map_indexed_inner<R, F>(
        &self,
        n: usize,
        chunk: usize,
        f: F,
        tune: Option<&TuneState>,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        assert!(chunk >= 1, "chunk size must be at least 1");
        let workers = self.workers.get().min(n.max(1));
        if workers <= 1 || n <= 1 {
            // Untuned phases skip the clock entirely — the sequential
            // fallback is the hot path for latency-bound fan-out.
            let Some(tune) = tune else { return (0..n).map(f).collect() };
            let started = Instant::now();
            let out: Vec<R> = (0..n).map(f).collect();
            tune.record(n, started.elapsed().as_nanos() as u64);
            return out;
        }
        let cursor = AtomicUsize::new(0);
        let busy_nanos = AtomicU64::new(0);
        let gathered: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        pool::global().run_phase(workers, &|_t| {
            let mut local: Vec<(usize, Vec<R>)> = Vec::new();
            let mut local_nanos = 0u64;
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                if tune.is_some() {
                    let t0 = Instant::now();
                    local.push((start, (start..end).map(&f).collect()));
                    local_nanos += t0.elapsed().as_nanos() as u64;
                } else {
                    local.push((start, (start..end).map(&f).collect()));
                }
            }
            if local_nanos > 0 {
                busy_nanos.fetch_add(local_nanos, Ordering::Relaxed);
            }
            gathered.lock().expect("result mutex").append(&mut local);
        });
        if let Some(tune) = tune {
            tune.record(n, busy_nanos.load(Ordering::Relaxed));
        }
        let mut batches = gathered.into_inner().expect("result mutex");
        batches.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(n);
        for (_, mut batch) in batches {
            out.append(&mut batch);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// [`Self::for_each_index_with`] on an autotuned **work-stealing
    /// chunked** schedule instead of the static stride: workers steal
    /// `chunk` consecutive indices at a time, where `chunk` comes from
    /// the per-call-site [`TuneState`] and each phase's measured
    /// per-item cost is fed back into it.
    ///
    /// Use this for *uniform* per-index work with disjoint writes (LSH
    /// key computation, sparse-edge kernel evaluation); triangular
    /// workloads should stay on the strided
    /// [`Self::for_each_index`], whose partition balances them without
    /// needing measurements. Determinism is untouched: `f` still sees
    /// every index in `0..n` exactly once and must leave index `i`'s
    /// output independent of the scratch's prior contents, so which
    /// worker ran which chunk can never reach the output.
    pub fn for_each_index_tuned_with<S, I, F>(&self, tune: &TuneState, n: usize, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.workers.get().min(n);
        if workers <= 1 || n <= 1 {
            let started = Instant::now();
            let mut scratch = init();
            for i in 0..n {
                f(&mut scratch, i);
            }
            tune.record(n, started.elapsed().as_nanos() as u64);
            return;
        }
        let chunk = tune.chunk_for(n, workers);
        let cursor = AtomicUsize::new(0);
        let busy_nanos = AtomicU64::new(0);
        pool::global().run_phase(workers, &|_t| {
            let mut scratch = init();
            let mut local_nanos = 0u64;
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let t0 = Instant::now();
                for i in start..end {
                    f(&mut scratch, i);
                }
                local_nanos += t0.elapsed().as_nanos() as u64;
            }
            busy_nanos.fetch_add(local_nanos, Ordering::Relaxed);
        });
        tune.record(n, busy_nanos.load(Ordering::Relaxed));
    }

    /// [`Self::for_each_index_tuned_with`] handing each worker **whole
    /// stolen spans** `start..end` instead of single indices, so the
    /// body can batch-process a contiguous run (gather rows once,
    /// evaluate a kernel block, write a slab of results) without paying
    /// a closure call per index.
    ///
    /// The contract tightens accordingly: the phase's observable effect
    /// for index `i` must be independent of *how `0..n` is cut into
    /// spans* — any partition into disjoint, covering ranges must
    /// produce byte-identical output. Batched kernel evaluation
    /// satisfies this because each pair's accumulation stays private to
    /// its own lane (see `alid-affinity`'s `block` module); a body that
    /// carried state across the indices of one span would not.
    ///
    /// The sequential path runs one span `0..n`; the parallel path
    /// steals spans of the tuned chunk size and feeds the measured
    /// per-item cost back, exactly like the per-index variant.
    pub fn for_each_span_tuned_with<S, I, F>(&self, tune: &TuneState, n: usize, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, std::ops::Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.workers.get().min(n);
        if workers <= 1 || n <= 1 {
            let started = Instant::now();
            let mut scratch = init();
            f(&mut scratch, 0..n);
            tune.record(n, started.elapsed().as_nanos() as u64);
            return;
        }
        let chunk = tune.chunk_for(n, workers);
        let cursor = AtomicUsize::new(0);
        let busy_nanos = AtomicU64::new(0);
        pool::global().run_phase(workers, &|_t| {
            let mut scratch = init();
            let mut local_nanos = 0u64;
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let t0 = Instant::now();
                f(&mut scratch, start..end);
                local_nanos += t0.elapsed().as_nanos() as u64;
            }
            busy_nanos.fetch_add(local_nanos, Ordering::Relaxed);
        });
        tune.record(n, busy_nanos.load(Ordering::Relaxed));
    }

    /// [`Self::map_indexed_chunked`] with a heuristic chunk size:
    /// one-at-a-time below 4 tasks per worker (latency-bound fan-out,
    /// e.g. ALID detections), and `n / (8 * workers)` above it
    /// (throughput-bound sweeps).
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.workers.get();
        let chunk = if n < 4 * workers { 1 } else { (n / (8 * workers)).max(1) };
        self.map_indexed_chunked(n, chunk, f)
    }

    /// Maps `f` over a task slice on the work-stealing pool, results in
    /// task order.
    pub fn map_tasks<T, R, F>(&self, tasks: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(tasks.len(), |i| f(&tasks[i]))
    }
}

impl Default for ExecPolicy {
    /// Sequential — parallelism is always an explicit opt-in.
    fn default() -> Self {
        Self::sequential()
    }
}

/// A `Send + Sync` view of a mutable slice for **caller-partitioned**
/// writes from [`ExecPolicy::for_each_index`] workers.
///
/// The type system cannot prove that workers write disjoint cells when
/// the partition is a domain invariant (e.g. "row `i` and its symmetric
/// reflection are written only by the owner of row `i`"), so writes go
/// through an `unsafe` method whose contract states exactly that.
pub struct SharedSlice<'a, T> {
    cells: &'a [UnsafeCell<T>],
}

// SAFETY: `SharedSlice` only allows writes through `write`, whose
// contract requires callers to target disjoint indices from distinct
// threads; under that contract data races cannot occur.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
// SAFETY: same argument as `Send` above — shared references only ever
// permit the disjoint-index `write` contract.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for the duration of a parallel phase.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` guarantees exclusive access; reinterpreting
        // as `[UnsafeCell<T>]` (same layout) hands that exclusivity to
        // the `write` contract below.
        let cells = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { cells }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    /// Within one parallel phase, each index must be written by at most
    /// one thread, and no slot may be read until the phase ends (the
    /// scope join provides the synchronization edge).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.cells[i].get() = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_policy_is_default_and_reports_one_worker() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::sequential());
        assert!(ExecPolicy::default().is_sequential());
        assert_eq!(ExecPolicy::workers(3).worker_count(), 3);
        assert!(!ExecPolicy::workers(3).is_sequential());
        assert!(ExecPolicy::auto().worker_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ExecPolicy::workers(0);
    }

    #[test]
    fn for_each_index_covers_every_index_exactly_once() {
        for workers in [1usize, 2, 3, 7] {
            let n = 103;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            ExecPolicy::workers(workers).for_each_index(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{workers} workers missed or repeated an index"
            );
        }
    }

    #[test]
    fn map_indexed_returns_results_in_task_order() {
        let expected: Vec<usize> = (0..57).map(|i| i * i).collect();
        for workers in [1usize, 2, 5] {
            for chunk in [1usize, 3, 64] {
                let got = ExecPolicy::workers(workers).map_indexed_chunked(57, chunk, |i| i * i);
                assert_eq!(got, expected, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn map_indexed_heuristic_matches_sequential() {
        let seq = ExecPolicy::sequential().map_indexed(200, |i| 3 * i + 1);
        let par = ExecPolicy::workers(4).map_indexed(200, |i| 3 * i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_tasks_preserves_order_for_irregular_costs() {
        let tasks: Vec<u64> = (0..40).map(|i| (40 - i) % 7).collect();
        let slow_double = |&t: &u64| {
            // Irregular busy work so stealing actually interleaves.
            let mut acc = 0u64;
            for k in 0..(t * 1000 + 1) {
                acc = acc.wrapping_add(k);
            }
            std::hint::black_box(acc);
            t * 2
        };
        let seq = ExecPolicy::sequential().map_tasks(&tasks, slow_double);
        let par = ExecPolicy::workers(4).map_tasks(&tasks, slow_double);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_indexed_empty_and_single() {
        let empty: Vec<usize> = ExecPolicy::workers(4).map_indexed(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(ExecPolicy::workers(4).map_indexed(1, |i| i + 9), vec![9]);
    }

    #[test]
    fn map_indexed_tuned_matches_sequential_for_any_tune_state() {
        let expected: Vec<usize> = (0..311).map(|i| i * 7 + 1).collect();
        // Fresh, converged-cheap and converged-expensive states must all
        // produce identical results at every worker count.
        for prime in [None, Some((1_000_000usize, 50_000_000u64)), Some((100, 50_000_000))] {
            let tune = TuneState::new();
            if let Some((items, nanos)) = prime {
                tune.record(items, nanos);
            }
            for workers in [1usize, 2, 4, 8] {
                let got = ExecPolicy::workers(workers).map_indexed_tuned(&tune, 311, |i| i * 7 + 1);
                assert_eq!(got, expected, "workers={workers} prime={prime:?}");
            }
        }
    }

    #[test]
    fn tuned_phases_feed_samples_back() {
        let tune = TuneState::new();
        assert_eq!(tune.snapshot().samples, 0);
        let _ =
            ExecPolicy::workers(2).map_indexed_tuned(&tune, 500, |i| std::hint::black_box(i * i));
        let snap = tune.snapshot();
        assert_eq!(snap.samples, 1, "one phase, one sample");
        assert!(snap.last_chunk >= 1);
        // A later phase through the same handle derives its chunk from
        // the measurement (it may or may not differ from the heuristic,
        // but it must stay within the steal ceiling).
        let _ = ExecPolicy::workers(2).map_indexed_tuned(&tune, 500, |i| i);
        assert!(tune.snapshot().last_chunk <= 500 / 2);
        assert_eq!(tune.snapshot().samples, 2);
    }

    #[test]
    fn for_each_index_tuned_with_covers_every_index_exactly_once() {
        for workers in [1usize, 2, 3, 7] {
            let tune = TuneState::new();
            let n = 203;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            ExecPolicy::workers(workers).for_each_index_tuned_with(
                &tune,
                n,
                || 0u64,
                |scratch, i| {
                    *scratch = scratch.wrapping_add(1);
                    hits[i].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{workers} workers missed or repeated an index"
            );
            assert!(tune.snapshot().samples >= 1, "{workers} workers fed no sample");
        }
    }

    #[test]
    fn for_each_span_tuned_with_covers_every_index_exactly_once() {
        for workers in [1usize, 2, 3, 7] {
            let tune = TuneState::new();
            let n = 203;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            ExecPolicy::workers(workers).for_each_span_tuned_with(
                &tune,
                n,
                || (),
                |(), span| {
                    for i in span {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                },
            );
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{workers} workers missed or repeated an index"
            );
            assert!(tune.snapshot().samples >= 1, "{workers} workers fed no sample");
        }
    }

    #[test]
    fn for_each_span_tuned_with_sequential_path_sees_one_span() {
        let tune = TuneState::new();
        let spans = Mutex::new(Vec::new());
        ExecPolicy::sequential().for_each_span_tuned_with(
            &tune,
            97,
            || (),
            |(), span| spans.lock().unwrap().push((span.start, span.end)),
        );
        assert_eq!(*spans.lock().unwrap(), vec![(0, 97)]);
        assert_eq!(tune.snapshot().samples, 1);
    }

    #[test]
    fn shared_slice_partitioned_writes_land() {
        let n = 64;
        let mut buf = vec![0u64; n];
        let shared = SharedSlice::new(&mut buf);
        ExecPolicy::workers(4).for_each_index(n, |i| {
            // SAFETY: index i is written only by the worker that owns it
            // (for_each_index hands each index to exactly one worker).
            unsafe { shared.write(i, (i * i) as u64) };
        });
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn shared_slice_len_tracks_buffer() {
        let mut buf = [0u8; 3];
        let s = SharedSlice::new(&mut buf);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
