//! The lazily started persistent worker pool behind every parallel
//! phase.
//!
//! The PR-1 exec layer spawned `workers - 1` OS threads *per phase*
//! via `std::thread::scope`; fine for long phases, wasteful for the
//! many short ones a full detection pass issues (one per speculative
//! peeling round, one per matrix build, ...). This module amortizes
//! that cost:
//!
//! * **lifecycle** — the pool is a process-wide singleton created on
//!   the first parallel phase. It grows lazily to the largest
//!   `workers - 1` ever requested (capped at [`MAX_POOL_THREADS`]) and
//!   its threads then live for the rest of the process, parked on a
//!   condvar while idle. There is deliberately no shutdown: workers
//!   hold no resources the OS does not reclaim at exit, and a
//!   tear-down path would force every caller to prove no phase is in
//!   flight. `ExecPolicy` with `workers == 1` never touches the pool.
//! * **phases** — a phase hands the pool one `Fn(usize) + Sync` body;
//!   logical worker 0 runs on the *calling* thread and workers
//!   `1..W` are enqueued as jobs. The call returns only when every
//!   logical worker has finished (a latch), which is what makes it
//!   sound to give pool threads a raw, lifetime-erased pointer to a
//!   stack-borrowed closure.
//! * **determinism** — unchanged from the scoped version: the pool
//!   decides *where* a logical worker runs, never *what* it computes.
//!   Logical worker `t` executes the same index set (strided
//!   partition) or drains the same atomic cursor as before, so any
//!   mapping of logical workers onto pool threads — including all of
//!   them running serially on one thread — produces identical bytes.
//! * **nesting / panics** — a phase waiter helps drain the shared job
//!   queue while it waits, so a phase started from inside a pool job
//!   cannot deadlock the pool; a panicking body is caught, the latch
//!   still counts down, and the payload is rethrown on the calling
//!   thread once the phase has fully drained.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Write-only telemetry handles for the pool, registered once in the
/// process-global `alid-obs` registry. Every accessor call site hoists
/// the lookup *outside* any queue-lock region: the first call registers
/// under the registry's own mutex, which must never nest inside ours.
struct PoolMetrics {
    jobs: Arc<alid_obs::Counter>,
    steals: Arc<alid_obs::Counter>,
    parks: Arc<alid_obs::Counter>,
    phases: Arc<alid_obs::Counter>,
    job_seconds: Arc<alid_obs::Histogram>,
    phase_seconds: Arc<alid_obs::Histogram>,
}

fn metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = alid_obs::global();
        r.gauge_fn(
            "alid_exec_pool_threads",
            "Persistent exec pool threads spawned so far",
            &[],
            || thread_count() as f64,
        );
        PoolMetrics {
            jobs: r.counter("alid_exec_jobs_total", "Pool-side logical worker jobs run", &[]),
            steals: r.counter(
                "alid_exec_queue_help_steals_total",
                "Own-phase jobs a waiting caller ran instead of a pool thread",
                &[],
            ),
            parks: r.counter(
                "alid_exec_parks_total",
                "Times a pool worker parked on the idle condvar",
                &[],
            ),
            phases: r.counter(
                "alid_exec_phases_total",
                "Parallel phases dispatched through the pool",
                &[],
            ),
            job_seconds: r.histogram(
                "alid_exec_job_seconds",
                "Wall time of one pool-side logical worker job",
                &[],
            ),
            phase_seconds: r.histogram(
                "alid_exec_phase_seconds",
                "Parallel phase wall time, dispatch to latch-zero",
                &[],
            ),
        }
    })
}

/// Ceiling on pool threads: far above any sane `ExecPolicy`, low
/// enough that a pathological `workers(1_000_000)` cannot exhaust OS
/// threads (excess logical workers just queue behind the cap).
const MAX_POOL_THREADS: usize = 256;

/// One queued logical worker of some phase. Kept as data (phase +
/// worker index) rather than a boxed closure so a waiter can tell
/// *whose* job it is — see [`PhaseWait`] for why that matters.
struct Job {
    phase: Arc<Phase>,
    t: usize,
}

impl Job {
    fn run(self) {
        let m = metrics();
        m.jobs.inc();
        let _job_timer = m.job_seconds.start_timer();
        // SAFETY: `PhaseWait` keeps `run_phase` from returning or
        // unwinding until `remaining` hits zero, i.e. until after
        // this dereference.
        let body = unsafe { &*self.phase.body.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(self.t))) {
            let mut slot = self.phase.panic.lock().expect("phase panic slot");
            slot.get_or_insert(payload);
        }
        self.phase.finish_one();
    }
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signals both "a job was enqueued" (wakes idle workers and
    /// helping waiters) and "a phase latch reached zero" (wakes that
    /// phase's waiter).
    signal: Condvar,
}

pub(crate) struct Pool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
    /// Lock-free mirror of `spawned` for diagnostics readers. The
    /// `alid_exec_pool_threads` gauge closure runs under the obs
    /// registry's render lock, and the spawn site (which holds the
    /// `spawned` guard) can initialise that registry via `metrics()`;
    /// reading the mutex from the gauge would order the two lock
    /// classes both ways. The atomic keeps the exposition path off the
    /// pool's mutex entirely.
    spawned_count: AtomicUsize,
}

/// Lifetime-erased pointer to a phase body. Sound to send across
/// threads because [`Pool::run_phase`] never returns (or unwinds)
/// while a job that could dereference it is outstanding.
struct BodyPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (so `&body` may be used from any
// thread) and `run_phase`'s latch guarantees it outlives every use.
unsafe impl Send for BodyPtr {}
// SAFETY: same argument as `Send` above — the pointee is `Sync` and
// outlives every use.
unsafe impl Sync for BodyPtr {}

struct Phase {
    body: BodyPtr,
    /// Pool jobs of this phase still running or queued.
    remaining: AtomicUsize,
    /// First panic payload from a pool-side logical worker.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    shared: Arc<Shared>,
}

impl Phase {
    fn finish_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the queue lock before notifying so the waiter cannot
            // observe `remaining > 0` and block between our decrement
            // and this wakeup.
            let _guard = self.shared.queue.lock().expect("pool queue");
            self.shared.signal.notify_all();
        }
    }
}

/// Waits for a phase's outstanding pool jobs on drop — even when the
/// calling thread's own body panics, since queued jobs hold a pointer
/// into the unwinding stack frame. Helps run queued jobs **of its own
/// phase only** while waiting, so phases started from inside pool
/// jobs make progress.
///
/// Own-phase-only helping is a correctness requirement, not an
/// optimization: the waiting thread may hold caller locks (a service
/// shard mutex around a nested sweep phase, say), and running a
/// *foreign* job here would import that job's lock acquisitions into
/// the current lock context — if the foreign job tries to take a lock
/// this very thread already holds, the process deadlocks. Own jobs
/// can never do that (the phase body is the same closure this thread
/// is already inside of, at a different index). Progress is
/// preserved: every waiting phase can drain its own queued jobs
/// itself, so no phase ever depends on another phase's waiter.
struct PhaseWait<'a>(&'a Phase);

impl Drop for PhaseWait<'_> {
    fn drop(&mut self) {
        let m = metrics();
        let shared = &self.0.shared;
        let mut queue = shared.queue.lock().expect("pool queue");
        while self.0.remaining.load(Ordering::Acquire) > 0 {
            let mine = queue
                .iter()
                .position(|job| std::ptr::eq(Arc::as_ptr(&job.phase), self.0 as *const Phase));
            // `position` and `remove` run under one continuous lock,
            // so the index cannot go stale; resolving the `Option` via
            // the wait arm (instead of unwrapping) keeps any panic from
            // ever poisoning the pool queue.
            match mine.and_then(|idx| queue.remove(idx)) {
                Some(job) => {
                    drop(queue);
                    m.steals.inc();
                    job.run();
                    queue = shared.queue.lock().expect("pool queue");
                }
                None => queue = shared.signal.wait(queue).expect("pool queue"),
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let m = metrics();
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue");
            loop {
                match queue.pop_front() {
                    Some(job) => break job,
                    None => {
                        m.parks.inc();
                        queue = shared.signal.wait(queue).expect("pool queue");
                    }
                }
            }
        };
        job.run();
    }
}

pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared { queue: Mutex::new(VecDeque::new()), signal: Condvar::new() }),
        spawned: Mutex::new(0),
        spawned_count: AtomicUsize::new(0),
    })
}

/// Number of persistent pool threads spawned so far in this process
/// (diagnostics; 0 until the first parallel phase runs). Reads the
/// lock-free mirror, never the spawn mutex — see `Pool::spawned_count`.
pub fn thread_count() -> usize {
    global().spawned_count.load(Ordering::Relaxed)
}

impl Pool {
    fn ensure_threads(&self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_THREADS);
        let mut spawned = self.spawned.lock().expect("pool size");
        while *spawned < wanted {
            let shared = Arc::clone(&self.shared);
            let spawn = std::thread::Builder::new()
                .name(format!("alid-exec-{}", *spawned))
                .spawn(move || worker_loop(shared));
            if let Err(e) = spawn {
                // Release the guard before panicking so later phases
                // never see a poisoned spawn lock.
                drop(spawned);
                panic!("spawn exec pool worker: {e}");
            }
            *spawned += 1;
            self.spawned_count.store(*spawned, Ordering::Relaxed);
        }
    }

    /// Runs one parallel phase: `body(t)` for every logical worker
    /// `t in 0..workers`, with worker 0 on the calling thread and the
    /// rest on pool threads. Returns — rethrowing any worker panic —
    /// only after every logical worker has finished.
    pub(crate) fn run_phase(&self, workers: usize, body: &(dyn Fn(usize) + Sync)) {
        debug_assert!(workers >= 2, "the sequential fast path is the caller's job");
        let m = metrics();
        m.phases.inc();
        let _phase_timer = m.phase_seconds.start_timer();
        let mut sp = alid_obs::trace::span("exec.phase");
        sp.count("workers", workers as u64);
        let extra = workers - 1;
        self.ensure_threads(extra);
        // SAFETY: pure lifetime erasure on a fat reference; the latch
        // below keeps the pointee alive across every dereference.
        let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        let phase = Arc::new(Phase {
            body: BodyPtr(body_static as *const _),
            remaining: AtomicUsize::new(extra),
            panic: Mutex::new(None),
            shared: Arc::clone(&self.shared),
        });
        {
            let mut queue = self.shared.queue.lock().expect("pool queue");
            for t in 1..workers {
                queue.push_back(Job { phase: Arc::clone(&phase), t });
            }
        }
        self.shared.signal.notify_all();
        {
            let _wait = PhaseWait(&phase);
            body(0);
        }
        let payload = phase.panic.lock().expect("phase panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ExecPolicy;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_starts_lazily_and_persists_across_phases() {
        ExecPolicy::workers(4).for_each_index(64, |_| {});
        let after_first = super::thread_count();
        assert!(after_first >= 3, "a 4-worker phase needs >= 3 pool threads");
        for _ in 0..32 {
            ExecPolicy::workers(4).for_each_index(64, |_| {});
        }
        // Repeat phases at the same width reuse the parked workers;
        // other concurrently running tests may grow the pool, but a
        // 4-worker phase itself never needs to.
        assert!(super::thread_count() <= super::MAX_POOL_THREADS);
    }

    #[test]
    fn sequential_policy_never_touches_the_pool() {
        // Can't assert a global count of zero (other tests share the
        // pool), but the sequential path must run on this very thread.
        let here = std::thread::current().id();
        ExecPolicy::sequential().for_each_index(8, |_| {
            assert_eq!(std::thread::current().id(), here);
        });
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            ExecPolicy::workers(3).for_each_index(30, |i| {
                if i == 17 {
                    panic!("boom at {i}");
                }
            });
        });
        assert!(caught.is_err(), "a worker panic must reach the caller");
        // The pool is still serviceable after a panicked phase.
        let hits = AtomicUsize::new(0);
        ExecPolicy::workers(3).for_each_index(30, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn nested_phases_do_not_deadlock() {
        let outer = ExecPolicy::workers(2);
        let inner = ExecPolicy::workers(2);
        let results = outer.map_indexed(4, |i| {
            let hits = AtomicUsize::new(0);
            inner.for_each_index(16, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            i + hits.load(Ordering::Relaxed)
        });
        assert_eq!(results, vec![16, 17, 18, 19]);
    }

    /// Regression for the foreign-job deadlock: concurrent phases
    /// whose bodies hold per-index locks around *nested* phases. With
    /// the old any-job queue helping, a waiter inside phase A (holding
    /// lock i) could pop phase B's job, which tries to lock the same i
    /// on the same thread — permanent deadlock. Own-phase-only helping
    /// makes this shape safe; the test hangs (CI timeout) on
    /// regression.
    #[test]
    fn concurrent_lock_holding_phases_with_nested_phases_do_not_deadlock() {
        use std::sync::Mutex;
        let locks: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        let locks = &locks;
        for _round in 0..25 {
            std::thread::scope(|scope| {
                for _caller in 0..3 {
                    scope.spawn(move || {
                        let results = ExecPolicy::workers(3).map_indexed(4, |i| {
                            let mut guard = locks[i].lock().expect("shard lock");
                            // Nested phase while holding the lock —
                            // the service drain/sweep pattern.
                            let hits = AtomicUsize::new(0);
                            ExecPolicy::workers(2).for_each_index(8, |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                            *guard += 1;
                            hits.load(Ordering::Relaxed)
                        });
                        assert_eq!(results, vec![8, 8, 8, 8]);
                    });
                }
            });
        }
        let total: u64 = locks.iter().map(|l| *l.lock().expect("shard lock")).sum();
        assert_eq!(total, 25 * 3 * 4);
    }

    #[test]
    fn scratch_is_per_worker_and_results_match_sequential() {
        let n = 200;
        let compute = |scratch: &mut Vec<u64>, i: usize| -> u64 {
            scratch.clear();
            scratch.extend((0..8).map(|k| (i as u64).wrapping_mul(k + 1)));
            scratch.iter().sum()
        };
        let mut seq = vec![0u64; n];
        {
            let mut scratch = Vec::new();
            for (i, s) in seq.iter_mut().enumerate() {
                *s = compute(&mut scratch, i);
            }
        }
        for workers in [1usize, 2, 5] {
            let mut par = vec![0u64; n];
            {
                let shared = crate::SharedSlice::new(&mut par);
                ExecPolicy::workers(workers).for_each_index_with(n, Vec::new, |scratch, i| {
                    let v = compute(scratch, i);
                    // SAFETY: index i is written only by its owner.
                    unsafe { shared.write(i, v) };
                });
            }
            assert_eq!(par, seq, "{workers} workers");
        }
    }
}
