//! # alid — Scalable Dominant Cluster Detection
//!
//! A from-scratch Rust reproduction of *ALID: Scalable Dominant Cluster
//! Detection* (Chu, Wang, Liu, Huang & Pei, VLDB 2015), including every
//! substrate and baseline the paper's evaluation depends on.
//!
//! A *dominant cluster* is a group of highly similar objects — a dense
//! subgraph of the affinity graph — hidden in an unknown amount of
//! background noise. ALID detects such clusters without knowing their
//! number and without ever materialising the `O(n^2)` affinity matrix:
//! evolutionary-game dynamics are confined to lazily computed local
//! submatrices inside an adaptively grown Region of Interest, with
//! candidate vertices retrieved by locality-sensitive hashing.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`affinity`] | `alid-affinity` | data sets, Lp metrics, the Laplacian kernel, dense/local/sparse affinity matrices, the deterministic cost model, simplex utilities |
//! | [`lsh`] | `alid-lsh` | p-stable LSH (Datar et al. 2004) with tombstones and inverted lists |
//! | [`linalg`] | `alid-linalg` | Jacobi eigensolver, orthogonal iteration |
//! | [`core`] | `alid-core` | LID, ROI, CIVS, the ALID driver, peeling, PALID |
//! | [`exec`] | `alid-exec` | the shared parallel-execution layer: [`ExecPolicy`](prelude::ExecPolicy), deterministic parallel map, work stealing, the persistent worker pool |
//! | [`baselines`] | `alid-baselines` | IID, replicator dynamics / dominant sets, SEA, affinity propagation, k-means, spectral clustering (full + Nyström), mean shift |
//! | [`data`] | `alid-data` | NART / NDI / SIFT simulators, the synthetic regimes, noise injection, AVG-F metrics |
//! | [`service`] | `alid-service` | the sharded online detection service: deterministic routing, bounded admission, snapshot persistence, the std-only HTTP front end (`alid serve`) |
//!
//! ## Quick start
//!
//! ```
//! use alid::prelude::*;
//!
//! // A workload with planted clusters: 3 visual words of 30 descriptors
//! // plus 40 noise descriptors on the unit sphere.
//! let ds = alid::data::sift::sift(&alid::data::sift::SiftConfig {
//!     words: 3,
//!     word_size: 30,
//!     noise: 40,
//!     seed: 7,
//! });
//!
//! // Calibrate the kernel from the data scale and run the peeling loop.
//! let params = AlidParams::calibrated(&ds.data, ds.scale, 0.9);
//! let cost = CostModel::shared();
//! let clustering = Peeler::new(&ds.data, params, cost).detect_all();
//! let dominant = clustering.dominant(0.75, 3);
//!
//! assert_eq!(dominant.len(), 3);
//! assert!(alid::data::metrics::avg_f1(&ds.truth, &dominant) > 0.99);
//! ```

#![forbid(unsafe_code)]

pub use alid_affinity as affinity;
pub use alid_baselines as baselines;
pub use alid_core as core;
pub use alid_data as data;
pub use alid_exec as exec;
pub use alid_linalg as linalg;
pub use alid_lsh as lsh;
pub use alid_obs as obs;
pub use alid_service as service;

/// The items most programs need.
pub mod prelude {
    pub use alid_affinity::clustering::{Clustering, DetectedCluster};
    pub use alid_affinity::cost::CostModel;
    pub use alid_affinity::kernel::{LaplacianKernel, LpNorm};
    pub use alid_affinity::vector::Dataset;
    pub use alid_core::streaming::{MergeEvidence, StreamUpdate, StreamingAlid};
    pub use alid_core::{
        detect_on_subset, detect_one, palid_detect, AlidParams, PalidParams, PeelStats, Peeler,
        RoundStats, SpeculationParams,
    };
    pub use alid_data::groundtruth::{GroundTruth, LabeledDataset};
    pub use alid_exec::ExecPolicy;
    pub use alid_lsh::{LshIndex, LshParams, ShardRouter, SimHashIndex, SimHashParams};
    pub use alid_service::{
        Admission, ClusterSummary, MergedCluster, MergedView, ReduceStats, Service, ServiceConfig,
    };
}
