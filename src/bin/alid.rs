//! `alid` — the one command-line entry point.
//!
//! Two subcommands:
//!
//! * `alid detect <data.csv> [options]` — batch detection: reads a
//!   headerless CSV of f64 feature rows, runs the ALID peeling loop
//!   (or PALID with `--parallel`), prints the dominant clusters. The
//!   subcommand name may be omitted (`alid data.csv ...` still works).
//! * `alid serve [options]` — the sharded online detection service
//!   with the std-only HTTP front end (see `alid serve --help`).
//! * `alid lint [options]` — the workspace determinism & safety
//!   linter (see DESIGN.md, "Enforced invariants"; `alid lint --help`).
//!
//! ```text
//! alid data.csv --scale 0.3                  # calibrated kernel
//! alid data.csv --k 1.5 --min-density 0.6    # explicit kernel
//! alid data.csv --scale 0.3 --parallel 4     # PALID with 4 executors
//! alid serve --dim 16 --scale 0.25 --shards 4
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use alid::data::io::read_csv;
use alid::prelude::*;

struct Options {
    input: PathBuf,
    scale: Option<f64>,
    k: Option<f64>,
    target_affinity: f64,
    min_density: f64,
    min_size: usize,
    delta: usize,
    parallel: Option<usize>,
    workers: Option<usize>,
    seed: u64,
    assignments: bool,
}

fn usage() -> &'static str {
    "usage: alid [detect] <data.csv> [options]\n\
     \x20      alid serve [options]        (see `alid serve --help`)\n\
     \x20      alid lint [options]         (see `alid lint --help`)\n\
     \n\
     input: headerless CSV, one item per row, f64 columns\n\
     \n\
     kernel (choose one):\n\
       --scale <d>        typical intra-cluster distance; k is calibrated so\n\
                          that distance maps to --target-affinity (default 0.9)\n\
       --k <k>            explicit Laplacian scaling factor of a_ij = e^(-k*d)\n\
     \n\
     options:\n\
       --target-affinity <a>   affinity at --scale (default 0.9)\n\
       --min-density <pi>      dominant-cluster threshold (default 0.75)\n\
       --min-size <m>          minimum cluster size (default 3)\n\
       --delta <n>             CIVS candidate cap (default 800)\n\
       --parallel <e>          run PALID with e executors instead of peeling\n\
       --workers <w>           worker threads for the parallel phases\n\
                               (default: auto = all cores; 1 = sequential;\n\
                               output is byte-identical for any count)\n\
       --seed <s>              LSH/PALID seed (default 42)\n\
       --assignments           also print one `item cluster` line per item\n\
       --help"
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut args = args.iter().cloned();
    let mut input: Option<PathBuf> = None;
    let mut o = Options {
        input: PathBuf::new(),
        scale: None,
        k: None,
        target_affinity: 0.9,
        min_density: 0.75,
        min_size: 3,
        delta: 800,
        parallel: None,
        workers: None,
        seed: 42,
        assignments: false,
    };
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--scale" => o.scale = Some(parse_f64(&take("--scale")?)?),
            "--k" => o.k = Some(parse_f64(&take("--k")?)?),
            "--target-affinity" => o.target_affinity = parse_f64(&take("--target-affinity")?)?,
            "--min-density" => o.min_density = parse_f64(&take("--min-density")?)?,
            "--min-size" => {
                o.min_size = take("--min-size")?.parse().map_err(|e| format!("--min-size: {e}"))?
            }
            "--delta" => o.delta = take("--delta")?.parse().map_err(|e| format!("--delta: {e}"))?,
            "--parallel" => {
                o.parallel =
                    Some(take("--parallel")?.parse().map_err(|e| format!("--parallel: {e}"))?)
            }
            "--workers" => {
                let w: usize = take("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
                if w == 0 {
                    return Err("--workers must be at least 1".into());
                }
                o.workers = Some(w);
            }
            "--seed" => o.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--assignments" => o.assignments = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}\n\n{}", usage()))
            }
            path => {
                if input.replace(PathBuf::from(path)).is_some() {
                    return Err("multiple input files given".into());
                }
            }
        }
    }
    o.input = input.ok_or_else(|| usage().to_string())?;
    if o.scale.is_none() && o.k.is_none() {
        return Err("one of --scale or --k is required".into());
    }
    if o.scale.is_some() && o.k.is_some() {
        return Err("--scale and --k are mutually exclusive".into());
    }
    if let Some(s) = o.scale {
        if !(s > 0.0 && s.is_finite()) {
            return Err(format!("--scale must be a positive finite distance, got {s}"));
        }
    }
    if let Some(k) = o.k {
        if !(k > 0.0 && k.is_finite()) {
            return Err(format!("--k must be a positive finite factor, got {k}"));
        }
    }
    if !(o.target_affinity > 0.0 && o.target_affinity < 1.0) {
        return Err(format!(
            "--target-affinity must lie strictly between 0 and 1, got {}",
            o.target_affinity
        ));
    }
    Ok(o)
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|e| format!("bad number {s:?}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => match alid::service::cli::serve_main(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        },
        Some("detect") => detect_main(&argv[1..]),
        Some("lint") => ExitCode::from(alid_lint::cli_main(&argv[1..]) as u8),
        _ => detect_main(&argv),
    }
}

fn detect_main(args: &[String]) -> ExitCode {
    let opts = match parse(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let data = match read_csv(&opts.input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error reading {}: {e}", opts.input.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{} items x {} dims", data.len(), data.dim());
    let kernel = match (opts.k, opts.scale) {
        (Some(k), _) => LaplacianKernel::l2(k),
        (None, Some(scale)) => LaplacianKernel::calibrate(
            scale,
            opts.target_affinity,
            alid::affinity::kernel::LpNorm::L2,
        ),
        (None, None) => unreachable!("validated in parse"),
    };
    let mut params = AlidParams::new(kernel).with_delta(opts.delta);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.density_threshold = opts.min_density;
    params.min_cluster_size = opts.min_size;
    params.lsh.seed = opts.seed;
    // Auto-parallelism is on by default (results are byte-identical for
    // any worker count); --workers pins the count, --workers 1 restores
    // the sequential pass and its minimal cost trace.
    params.exec = ExecPolicy::auto_or(opts.workers);
    let cost = CostModel::shared();
    let clustering = match opts.parallel {
        Some(executors) => {
            let mut pp = PalidParams::with_executors(executors.max(1));
            pp.seed = opts.seed;
            palid_detect(&data, &params, &pp, &cost)
        }
        None => Peeler::new(&data, params, Arc::clone(&cost)).detect_all(),
    };
    let mut dominant = clustering.dominant(opts.min_density, opts.min_size);
    dominant.sort_by_density();
    println!(
        "# {} dominant clusters (density >= {}, size >= {})",
        dominant.len(),
        opts.min_density,
        opts.min_size
    );
    for (i, c) in dominant.clusters.iter().enumerate() {
        let members: Vec<String> = c.members.iter().map(|m| m.to_string()).collect();
        println!(
            "cluster {i}\tdensity {:.4}\tsize {}\tmembers {}",
            c.density,
            c.len(),
            members.join(",")
        );
    }
    if opts.assignments {
        for (item, label) in dominant.labels().iter().enumerate() {
            match label {
                Some(c) => println!("{item}\t{c}"),
                None => println!("{item}\t-"),
            }
        }
    }
    let snap = cost.snapshot();
    eprintln!(
        "kernel evals: {} ({:.2}% of full matrix), peak matrix entries: {}",
        snap.kernel_evals,
        100.0 * snap.kernel_evals as f64 / ((data.len() * data.len()).max(1)) as f64,
        snap.entries_peak
    );
    ExitCode::SUCCESS
}
