//! The sharded serving layer, in process: admit a bursty stream
//! through the bounded queues, watch backpressure and promotion
//! happen, query the cross-shard top-k, then snapshot and restore.
//!
//! ```text
//! cargo run --release --example service_quickstart
//! ```
//!
//! The same flow is available over HTTP — `alid serve --dim 4 --scale
//! 0.1 --shards 2` and curl the endpoints (see the README quickstart).

use std::sync::Arc;

use alid::prelude::*;
use alid::service::{restore, snapshot_bytes};

fn main() {
    // Three "topics" far apart in a 4-d feature space, plus noise.
    let topics = [[30.0, 0.0, 0.0, 5.0], [0.0, 30.0, 5.0, 0.0], [-20.0, -20.0, 10.0, 0.0]];
    let item = |t: usize, j: usize| -> Vec<f64> {
        topics[t].iter().map(|&c| c + (j % 5) as f64 * 0.02).collect()
    };
    let noise = |i: usize| -> Vec<f64> {
        (0..4).map(|d| ((i * 37 + d * 101) % 997) as f64 - 500.0).collect()
    };

    let kernel = LaplacianKernel::calibrate(0.2, 0.9, alid::affinity::kernel::LpNorm::L2);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.density_threshold = 0.75;
    params.min_cluster_size = 4;
    params.exec = ExecPolicy::auto();

    let cfg = ServiceConfig::new(4, 2, params).with_batch(16).with_exec(ExecPolicy::auto());
    let service = Arc::new(Service::new(cfg));

    // A deterministic interleaved stream: topic bursts + noise.
    for i in 0..120 {
        let v = match i % 4 {
            3 => noise(i),
            t => item(t, i),
        };
        match service.ingest(&v) {
            Admission::Enqueued { id, shard, .. } => {
                if id % 30 == 0 {
                    println!("item {id} routed to shard {shard}");
                }
            }
            Admission::Busy { shard, depth } => {
                println!("shard {shard} backpressured at depth {depth}; draining");
                service.drain();
            }
        }
        // A real deployment drains on its own cadence; here: every
        // few arrivals.
        if i % 8 == 7 {
            let report = service.drain();
            if report.promoted > 0 {
                println!("t={i:>3} sweep promoted {} new cluster(s)", report.promoted);
            }
        }
    }
    service.drain();
    service.sweep();

    println!("\ntop clusters across {} shards:", service.shard_count());
    for s in service.top_k(5) {
        println!(
            "  shard {} cluster {}: {} items, density {:.3}",
            s.cluster.shard, s.cluster.cluster, s.size, s.density
        );
    }

    // Persist, restore, and prove the restore serves the same answers.
    let bytes = snapshot_bytes(&service);
    let restored = restore(&bytes, ExecPolicy::auto()).expect("snapshot restores");
    println!("\nsnapshot: {} bytes; restored {} items", bytes.len(), restored.len());
    assert_eq!(service.len(), restored.len());
    let (a, b) = (service.top_k(5), restored.top_k(5));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cluster, y.cluster);
        assert_eq!(x.density.to_bits(), y.density.to_bits(), "restore is bit-exact");
    }
    println!("restored service answers the same top-k, bit for bit");
}
