//! Parallel visual-word mining with PALID — the paper's SIFT scenario.
//!
//! ```text
//! cargo run --release --example visual_words_parallel
//! ```
//!
//! Partial-duplicate image regions produce tight clusters of SIFT
//! descriptors ("visual words") on the unit sphere, drowned in
//! descriptors from random regions. PALID fans ALID detections out over
//! an executor pool — mappers grow clusters from LSH-bucket-sampled
//! seeds, a reducer resolves overlaps by density (Fig. 5) — and the
//! example reports the speedup over executor counts, Table 2's shape.

use alid::data::metrics::{avg_f1, precision_recall};
use alid::data::sift::{sift, SiftConfig};
use alid::prelude::*;
use std::time::Instant;

fn main() {
    let ds = sift(&SiftConfig::scaled(12_000, 19));
    println!(
        "workload '{}': {} descriptors, {} visual words, {} noise",
        ds.name,
        ds.len(),
        ds.truth.cluster_count(),
        ds.truth.noise_count()
    );

    let params = AlidParams::calibrated(&ds.data, ds.scale, 0.9).with_lsh_seed(23);
    let mut t1 = None;
    for executors in [1usize, 2, 4] {
        let cost = CostModel::shared();
        let pp = PalidParams::with_executors(executors);
        let started = Instant::now();
        let clustering = palid_detect(&ds.data, &params, &pp, &cost);
        let elapsed = started.elapsed().as_secs_f64();
        let dominant = clustering.dominant(0.75, 5);
        let (p, r) = precision_recall(&ds.truth, &dominant);
        let speedup = match t1 {
            None => {
                t1 = Some(elapsed);
                1.0
            }
            Some(base) => base / elapsed,
        };
        println!(
            "PALID-{executors}: {elapsed:.2}s (speedup {speedup:.2}) | {} words, AVG-F {:.3}, precision {p:.3}, recall {r:.3}",
            dominant.len(),
            avg_f1(&ds.truth, &dominant),
        );
    }
    println!(
        "\nthe detected clusters are identical across executor counts — only the wall time changes"
    );
}
