//! Hot-event detection in a news stream — the paper's NART scenario.
//!
//! ```text
//! cargo run --release --example hot_events
//! ```
//!
//! A large stream of news articles contains a few "hot events": bursts
//! of highly similar coverage. Most articles are one-off daily news —
//! background noise that partitioning methods would be forced to spread
//! across clusters. This example runs ALID on the NART simulator (13
//! events, 350-d topic vectors) and reports how well the detected
//! dominant clusters recover the planted events, comparing against
//! k-means to show the noise-resistance gap of Fig. 11.

use alid::baselines::kmeans::{kmeans_detect_all, KmeansParams};
use alid::data::metrics::{avg_f1, precision_recall};
use alid::data::nart::nart_with;
use alid::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A quarter-scale NART: 13 events, ~184 event articles, ~1142 noise.
    let ds = nart_with(0.25, None, 7);
    println!(
        "corpus '{}': {} articles, {} hot events ({} articles), {} daily-news noise",
        ds.name,
        ds.len(),
        ds.truth.cluster_count(),
        ds.truth.positive_count(),
        ds.truth.noise_count()
    );

    // ---- ALID ---------------------------------------------------------
    let params = AlidParams::calibrated(&ds.data, ds.scale, 0.9).with_lsh_seed(3);
    let cost = CostModel::shared();
    let started = Instant::now();
    let clustering = Peeler::new(&ds.data, params, Arc::clone(&cost)).detect_all();
    let dominant = clustering.dominant(0.75, 3);
    let alid_time = started.elapsed();
    let (p, r) = precision_recall(&ds.truth, &dominant);
    println!(
        "\nALID: {} dominant clusters in {:.2?} | AVG-F {:.3}, precision {:.3}, recall {:.3}",
        dominant.len(),
        alid_time,
        avg_f1(&ds.truth, &dominant),
        p,
        r
    );
    let mut by_size: Vec<_> = dominant.clusters.iter().collect();
    by_size.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for (i, c) in by_size.iter().take(5).enumerate() {
        println!("  event {}: {} articles, density {:.3}", i + 1, c.len(), c.density);
    }
    let snap = cost.snapshot();
    println!(
        "  affinity work: {} kernel evals = {:.2}% of the full matrix",
        snap.kernel_evals,
        100.0 * snap.kernel_evals as f64 / (ds.len() * ds.len()) as f64
    );

    // ---- k-means for contrast ------------------------------------------
    // The partitioning protocol of Appendix C: K = true events + 1.
    let k = ds.truth.cluster_count() + 1;
    let started = Instant::now();
    let km = kmeans_detect_all(&ds.data, &KmeansParams::with_k(k));
    println!(
        "\nk-means (K={k}): AVG-F {:.3} in {:.2?} — noise is forced into event clusters",
        avg_f1(&ds.truth, &km),
        started.elapsed()
    );
}
