//! Online dominant-cluster detection over a stream — the paper's
//! announced future-work extension, implemented in
//! `alid_core::streaming`.
//!
//! ```text
//! cargo run --release --example streaming_events
//! ```
//!
//! News articles arrive one by one. Two hot events break at different
//! times inside a stream of daily-news noise; the streaming driver
//! buffers unexplained items, promotes a dominant cluster as soon as
//! enough correlated coverage accumulates, and attaches follow-up
//! articles to it in O(cluster) time without re-running detection.

use alid::affinity::kernel::LpNorm;
use alid::core::streaming::{StreamUpdate, StreamingAlid};
use alid::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let dim = 16;
    // Two event "topics" and a noise generator in a 16-d feature space.
    let event_a: Vec<f64> = (0..dim).map(|d| (d as f64 * 0.7).sin() * 3.0).collect();
    let event_b: Vec<f64> = (0..dim).map(|d| (d as f64 * 1.3).cos() * 3.0 + 10.0).collect();
    let noise = |rng: &mut StdRng| -> Vec<f64> {
        (0..dim).map(|_| rng.gen::<f64>() * 40.0 - 20.0).collect()
    };
    let near = |center: &[f64], rng: &mut StdRng| -> Vec<f64> {
        center.iter().map(|&c| c + (rng.gen::<f64>() - 0.5) * 0.2).collect()
    };

    // Jitter +-0.1 per dimension puts same-event articles ~0.23 apart;
    // calibrate the kernel so that distance maps to affinity ~0.9.
    let kernel = LaplacianKernel::calibrate(0.23, 0.9, LpNorm::L2);
    let mut params = AlidParams::new(kernel);
    params.first_roi_radius = kernel.distance_at(0.5);
    params.density_threshold = 0.75;
    params.min_cluster_size = 4;
    params.lsh.seed = 3;
    let mut stream = StreamingAlid::new(dim, params, 16, CostModel::shared());

    // The stream: noise, then event A bursts, more noise, event B bursts,
    // then follow-ups on both.
    let mut schedule: Vec<(&str, Vec<f64>)> = Vec::new();
    for _ in 0..30 {
        schedule.push(("noise", noise(&mut rng)));
    }
    for _ in 0..10 {
        schedule.push(("event-A", near(&event_a, &mut rng)));
    }
    for _ in 0..20 {
        schedule.push(("noise", noise(&mut rng)));
    }
    for _ in 0..10 {
        schedule.push(("event-B", near(&event_b, &mut rng)));
    }
    for _ in 0..5 {
        schedule.push(("event-A follow-up", near(&event_a, &mut rng)));
        schedule.push(("event-B follow-up", near(&event_b, &mut rng)));
    }

    for (t, (kind, item)) in schedule.iter().enumerate() {
        match stream.push(item) {
            StreamUpdate::SweptNewClusters(k) => {
                println!(
                    "t={t:>3} [{kind}] sweep promoted {k} new cluster(s); total {}",
                    stream.clusters().len()
                );
            }
            StreamUpdate::Attached(c) => {
                println!(
                    "t={t:>3} [{kind}] attached to cluster {c} (size {}, density {:.3})",
                    stream.clusters()[c].members.len(),
                    stream.clusters()[c].density
                );
            }
            StreamUpdate::Buffered => {}
        }
    }
    stream.sweep();

    println!("\nfinal state: {} items seen", stream.len());
    for (i, c) in stream.clusters().iter().enumerate() {
        println!("  cluster {i}: {} articles, density {:.3}", c.members.len(), c.density);
    }
    println!("  unexplained buffer: {} items", stream.pending().len());
}
