//! Quickstart: detect dominant clusters in a noisy point cloud.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small 2-d workload with three planted blobs drowned in
//! uniform noise, runs the ALID peeling loop, and prints the detected
//! dominant clusters alongside what the cost model says ALID *didn't*
//! compute (the whole point of the paper).

use alid::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    // ---- Workload: 3 blobs of 40 points + 200 noise points ----------
    let mut rng = StdRng::seed_from_u64(42);
    let mut data = Dataset::new(2);
    let centers = [(0.0, 0.0), (10.0, 3.0), (-6.0, 8.0)];
    for &(cx, cy) in &centers {
        for _ in 0..40 {
            let dx = gauss(&mut rng) * 0.15;
            let dy = gauss(&mut rng) * 0.15;
            data.push(&[cx + dx, cy + dy]);
        }
    }
    for _ in 0..200 {
        data.push(&[rng.gen::<f64>() * 40.0 - 15.0, rng.gen::<f64>() * 40.0 - 15.0]);
    }
    println!("workload: {} points ({} in clusters, {} noise)", data.len(), 120, 200);

    // ---- Detection ---------------------------------------------------
    // Calibrate the Laplacian kernel so a typical intra-cluster distance
    // (~0.3) maps to affinity 0.9, then peel clusters to exhaustion.
    let params = AlidParams::calibrated(&data, 0.3, 0.9).with_lsh_seed(7);
    let cost = CostModel::shared();
    let clustering = Peeler::new(&data, params, Arc::clone(&cost)).detect_all();
    let dominant = clustering.dominant(0.75, 5);

    println!("\ndetected {} dominant clusters:", dominant.len());
    for (i, c) in dominant.clusters.iter().enumerate() {
        let idx: Vec<usize> = c.members.iter().map(|&m| m as usize).collect();
        let center = data.centroid(&idx);
        println!(
            "  cluster {i}: {} members, density {:.3}, center ({:+.2}, {:+.2})",
            c.len(),
            c.density,
            center[0],
            center[1]
        );
    }

    // ---- What ALID avoided -------------------------------------------
    let snap = cost.snapshot();
    let full_matrix = (data.len() * data.len()) as u64;
    println!(
        "\ncost: {} kernel evaluations ({:.1}% of the full {}x{} matrix), peak {} matrix entries",
        snap.kernel_evals,
        100.0 * snap.kernel_evals as f64 / full_matrix as f64,
        data.len(),
        data.len(),
        snap.entries_peak
    );
}

/// Standard normal via Box–Muller (examples avoid extra dependencies).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}
