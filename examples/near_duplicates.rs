//! Near-duplicate image grouping — the paper's NDI scenario.
//!
//! ```text
//! cargo run --release --example near_duplicates
//! ```
//!
//! An image collection contains groups of near-duplicates (re-posts,
//! crops, re-encodes) among a much larger set of unrelated images, each
//! represented by a 256-d GIST descriptor. The example runs ALID and the
//! full-matrix IID baseline on the Sub-NDI simulator and contrasts their
//! detection quality and *matrix cost* — the paper's core claim is that
//! the quality stays while the O(n^2) matrix disappears.

use alid::affinity::dense::DenseAffinity;
use alid::baselines::common::HaltPolicy;
use alid::baselines::iid::{iid_detect_all, IidParams};
use alid::data::metrics::avg_f1;
use alid::data::ndi::sub_ndi;
use alid::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A 15%-scale Sub-NDI: 6 duplicate groups, ~213 positives, ~1278 noise.
    let ds = sub_ndi(0.15, None, 5);
    println!(
        "collection '{}': {} images, {} duplicate groups ({} images), {} unrelated",
        ds.name,
        ds.len(),
        ds.truth.cluster_count(),
        ds.truth.positive_count(),
        ds.truth.noise_count()
    );

    // ---- ALID ---------------------------------------------------------
    let params = AlidParams::calibrated(&ds.data, ds.scale, 0.9).with_lsh_seed(11);
    let kernel = params.kernel;
    let alid_cost = CostModel::shared();
    let started = Instant::now();
    let clustering = Peeler::new(&ds.data, params, Arc::clone(&alid_cost)).detect_all();
    let alid_dominant = clustering.dominant(0.75, 3);
    println!(
        "\nALID:  AVG-F {:.3}, {} groups, {:.2?}, {:>12} kernel evals, peak {:>9} entries",
        avg_f1(&ds.truth, &alid_dominant),
        alid_dominant.len(),
        started.elapsed(),
        alid_cost.snapshot().kernel_evals,
        alid_cost.snapshot().entries_peak,
    );

    // ---- IID on the full matrix ----------------------------------------
    let iid_cost = CostModel::shared();
    let started = Instant::now();
    let graph = DenseAffinity::build(&ds.data, &kernel, Arc::clone(&iid_cost));
    let iid_params = IidParams {
        halt: HaltPolicy::StopBelowDensity { threshold: 0.5, patience: 10 },
        ..Default::default()
    };
    let iid_clusters = iid_detect_all(&graph, &iid_params).dominant(0.75, 3);
    println!(
        "IID:   AVG-F {:.3}, {} groups, {:.2?}, {:>12} kernel evals, peak {:>9} entries",
        avg_f1(&ds.truth, &iid_clusters),
        iid_clusters.len(),
        started.elapsed(),
        iid_cost.snapshot().kernel_evals,
        iid_cost.snapshot().entries_peak,
    );

    let saving =
        1.0 - alid_cost.snapshot().kernel_evals as f64 / iid_cost.snapshot().kernel_evals as f64;
    println!(
        "\nsame detection quality, {:.1}% of the affinity computation pruned by ALID",
        100.0 * saving
    );
}
